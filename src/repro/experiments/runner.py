"""Experiment runner: replications, sweeps, and run-scale presets.

One *data point* of a paper figure is the miss ratio of each task class at
one parameter setting.  The paper estimates each point from two independent
runs of one million time units; at Python speed that costs minutes per
point, so the harness supports three scales:

* ``SMOKE``  -- for unit/integration tests: tiny runs, single replication;
* ``QUICK``  -- the default for benchmarks: the miss-ratio *orderings* of
  the paper are stable at this scale (tens of thousands of time units,
  two replications);
* ``FULL``   -- the paper's own setting (two runs of 1e6 time units); hours
  of wall clock in pure Python, available for final validation.

Each replication gets an independent seed derived from the base seed, and
every estimate carries a Student-t confidence interval.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..stats.confidence import IntervalEstimate, interval_from_samples
from ..system.config import SystemConfig
from ..system.metrics import RunResult
from ..system.simulation import Simulation


def run_config(config: SystemConfig) -> RunResult:
    """Build and run one simulation (module-level so it pickles for
    multiprocessing workers)."""
    return Simulation(config).run()


@dataclass(frozen=True)
class RunScale:
    """How long and how often to run each data point."""

    sim_time: float
    warmup_time: float
    replications: int
    label: str = "custom"

    def __post_init__(self) -> None:
        if self.replications < 1:
            raise ValueError(f"need >= 1 replication, got {self.replications}")
        if not 0 <= self.warmup_time < self.sim_time:
            raise ValueError(
                f"need 0 <= warmup < sim_time, got {self.warmup_time}, "
                f"{self.sim_time}"
            )

    def apply(self, config: SystemConfig) -> SystemConfig:
        """Stamp this scale's run lengths onto a config."""
        return config.with_(
            sim_time=self.sim_time, warmup_time=self.warmup_time
        )


#: Tiny runs for tests: enough tasks to see gross orderings, fast enough
#: for a wide test suite.
SMOKE = RunScale(sim_time=2_500.0, warmup_time=250.0, replications=1, label="smoke")

#: Benchmark default: stable orderings, seconds per point.
QUICK = RunScale(sim_time=24_000.0, warmup_time=2_400.0, replications=2, label="quick")

#: The paper's setting: two runs of one million time units.
FULL = RunScale(
    sim_time=1_000_000.0, warmup_time=50_000.0, replications=2, label="full"
)

SCALES: Dict[str, RunScale] = {s.label: s for s in (SMOKE, QUICK, FULL)}


@dataclass(frozen=True)
class PointEstimate:
    """Replicated measurement of one parameter setting."""

    config: SystemConfig
    md_local: IntervalEstimate
    md_global: IntervalEstimate
    utilization: float
    local_completed: int
    global_completed: int

    @property
    def gap(self) -> float:
        """``MD_global - MD_local``: the discrimination the paper studies."""
        return self.md_global.mean - self.md_local.mean


def replicate(
    config: SystemConfig,
    replications: int = 2,
    level: float = 0.95,
    runner: Optional[Callable[[SystemConfig], RunResult]] = None,
    workers: int = 1,
) -> PointEstimate:
    """Estimate one data point from ``replications`` independent runs.

    Replication ``i`` uses seed ``config.seed * 10_000 + i`` so that points
    of a sweep never share streams.  ``runner`` may be injected for testing
    (it defaults to building and running a real :class:`Simulation`).

    ``workers > 1`` runs the replications in a process pool -- worthwhile
    at FULL scale where each replication takes minutes.  Results are
    deterministic either way (each replication's seed is fixed up front);
    ``workers`` is ignored when a custom ``runner`` is injected, since
    closures generally do not pickle.
    """
    configs = [
        config.with_(seed=config.seed * 10_000 + i) for i in range(replications)
    ]
    if workers > 1 and runner is None and replications > 1:
        with multiprocessing.Pool(min(workers, replications)) as pool:
            results = pool.map(run_config, configs)
    else:
        run = runner or run_config
        results = [run(cfg) for cfg in configs]

    md_locals: List[float] = []
    md_globals: List[float] = []
    utilizations: List[float] = []
    local_completed = 0
    global_completed = 0
    for result in results:
        md_locals.append(result.md_local)
        md_globals.append(result.md_global)
        utilizations.append(result.mean_utilization)
        local_completed += result.local.completed
        global_completed += result.global_.completed
    return PointEstimate(
        config=config,
        md_local=interval_from_samples(md_locals, level),
        md_global=interval_from_samples(md_globals, level),
        utilization=sum(utilizations) / len(utilizations),
        local_completed=local_completed,
        global_completed=global_completed,
    )


@dataclass(frozen=True)
class SweepPoint:
    """One cell of a sweep: (x value, strategy) -> estimates."""

    x: float
    strategy: str
    estimate: PointEstimate


@dataclass(frozen=True)
class SweepResult:
    """A full parameter sweep over (x values x strategies)."""

    parameter: str
    x_values: Sequence[float]
    strategies: Sequence[str]
    points: Sequence[SweepPoint]

    def series(self, strategy: str, metric: str = "global") -> List[float]:
        """Miss-ratio series of one strategy along the sweep axis.

        ``metric`` is ``"global"`` or ``"local"``.
        """
        chosen = {
            p.x: (
                p.estimate.md_global.mean
                if metric == "global"
                else p.estimate.md_local.mean
            )
            for p in self.points
            if p.strategy == strategy
        }
        return [chosen[x] for x in self.x_values]

    def point(self, x: float, strategy: str) -> SweepPoint:
        for p in self.points:
            if p.x == x and p.strategy == strategy:
                return p
        raise KeyError(f"no point for x={x}, strategy={strategy!r}")


def sweep(
    base: SystemConfig,
    parameter: str,
    values: Sequence[float],
    strategies: Sequence[str],
    scale: RunScale = QUICK,
    runner: Optional[Callable[[SystemConfig], RunResult]] = None,
    workers: int = 1,
) -> SweepResult:
    """Run a grid of (parameter value x strategy) data points.

    ``parameter`` must be a field of :class:`SystemConfig` (e.g., ``load``
    or ``frac_local``).  Each grid cell gets a distinct base seed so the
    cells are statistically independent.  ``workers`` parallelizes the
    replications within each cell (see :func:`replicate`).
    """
    points: List[SweepPoint] = []
    for vi, value in enumerate(values):
        for si, strategy in enumerate(strategies):
            config = scale.apply(
                base.with_(
                    **{parameter: value},
                    strategy=strategy,
                    seed=base.seed + 1_000 * vi + si,
                )
            )
            estimate = replicate(
                config, replications=scale.replications, runner=runner,
                workers=workers,
            )
            points.append(SweepPoint(x=value, strategy=strategy, estimate=estimate))
    return SweepResult(
        parameter=parameter,
        x_values=list(values),
        strategies=list(strategies),
        points=points,
    )
