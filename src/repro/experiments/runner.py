"""Experiment runner: replications, sweeps, and run-scale presets.

One *data point* of a paper figure is the miss ratio of each task class at
one parameter setting.  The paper estimates each point from two independent
runs of one million time units; at Python speed that costs minutes per
point, so the harness supports three scales:

* ``SMOKE``  -- for unit/integration tests: tiny runs, single replication;
* ``QUICK``  -- the default for benchmarks: the miss-ratio *orderings* of
  the paper are stable at this scale (tens of thousands of time units,
  two replications);
* ``FULL``   -- the paper's own setting (two runs of 1e6 time units); hours
  of wall clock in pure Python, available for final validation.

Each replication gets an independent seed derived from the base seed, and
every estimate carries a Student-t confidence interval.
"""

from __future__ import annotations

import multiprocessing
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from functools import cached_property
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..stats.confidence import IntervalEstimate, interval_from_samples
from ..system.config import SystemConfig
from ..system.metrics import RunResult
from ..system.simulation import Simulation


def run_config(config: SystemConfig) -> RunResult:
    """Build and run one simulation (module-level so it pickles for
    multiprocessing workers)."""
    return Simulation(config).run()


def run_config_batch(configs: Sequence[SystemConfig]) -> List[RunResult]:
    """Run a batch of simulations back to back in one worker process.

    The in-process batch executor behind ``run_grid(batch_size=...)``:
    one pool task carries a whole slice of the grid, so the worker's warm
    interpreter is amortized over the slice and the pool exchanges one
    pickled config list and one result vector per batch instead of one
    round trip per run.  Module-level so it pickles for multiprocessing
    workers; runs strictly in order, which keeps grid results positional.
    """
    return [Simulation(config).run() for config in configs]


def resolve_workers(workers: int) -> int:
    """Normalize a ``workers`` argument: ``0`` means "all CPU cores"."""
    if workers == 0:
        return multiprocessing.cpu_count()
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    return workers


def resolve_batch_size(batch_size: int, runs: int, workers: int) -> int:
    """Normalize a ``batch_size`` argument for a pool of ``workers``.

    ``0`` (the default everywhere) means "auto": slice the ``runs`` into
    about four batches per worker -- large enough to amortize dispatch
    and IPC, small enough that heterogeneous cell costs still balance
    across the pool.  Any positive value is used as-is (``1`` recovers
    one-run-per-dispatch).
    """
    if batch_size == 0:
        return max(1, -(-runs // (workers * 4)))
    if batch_size < 0:
        raise ValueError(f"batch_size must be >= 0, got {batch_size}")
    return batch_size


@dataclass(frozen=True)
class RunScale:
    """How long and how often to run each data point."""

    sim_time: float
    warmup_time: float
    replications: int
    label: str = "custom"

    def __post_init__(self) -> None:
        if self.replications < 1:
            raise ValueError(f"need >= 1 replication, got {self.replications}")
        if not 0 <= self.warmup_time < self.sim_time:
            raise ValueError(
                f"need 0 <= warmup < sim_time, got {self.warmup_time}, "
                f"{self.sim_time}"
            )

    def apply(self, config: SystemConfig) -> SystemConfig:
        """Stamp this scale's run lengths onto a config."""
        return config.with_(
            sim_time=self.sim_time, warmup_time=self.warmup_time
        )


#: Tiny runs for tests: enough tasks to see gross orderings, fast enough
#: for a wide test suite.
SMOKE = RunScale(sim_time=2_500.0, warmup_time=250.0, replications=1, label="smoke")

#: Benchmark default: stable orderings, seconds per point.
QUICK = RunScale(sim_time=24_000.0, warmup_time=2_400.0, replications=2, label="quick")

#: The paper's setting: two runs of one million time units.
FULL = RunScale(
    sim_time=1_000_000.0, warmup_time=50_000.0, replications=2, label="full"
)

SCALES: Dict[str, RunScale] = {s.label: s for s in (SMOKE, QUICK, FULL)}


@dataclass(frozen=True)
class PointEstimate:
    """Replicated measurement of one parameter setting."""

    config: SystemConfig
    md_local: IntervalEstimate
    md_global: IntervalEstimate
    utilization: float
    local_completed: int
    global_completed: int
    #: Total preemption events across nodes and replications (0 for
    #: non-preemptive configurations; see ``NodeStats.preemptions``).
    preemptions: int = 0
    #: Total node crashes across nodes and replications (0 fault-free).
    crashes: int = 0
    #: Total crash-discarded work units across nodes and replications.
    lost: int = 0
    #: Total retry resubmissions across replications (0 unless a
    #: retry-enabled fault spec is configured).
    retries: int = 0

    @property
    def gap(self) -> float:
        """``MD_global - MD_local``: the discrimination the paper studies."""
        return self.md_global.mean - self.md_local.mean


def _replication_configs(
    config: SystemConfig, replications: int
) -> List[SystemConfig]:
    """The per-replication configs of one data point.

    Replication ``i`` uses seed ``config.seed * 10_000 + i`` so that points
    of a sweep never share streams.
    """
    return [
        config.with_(seed=config.seed * 10_000 + i) for i in range(replications)
    ]


def _aggregate(
    config: SystemConfig, results: Sequence[RunResult], level: float
) -> PointEstimate:
    """Fold the replications of one data point into a :class:`PointEstimate`."""
    md_locals: List[float] = []
    md_globals: List[float] = []
    utilizations: List[float] = []
    local_completed = 0
    global_completed = 0
    preemptions = 0
    crashes = 0
    lost = 0
    retries = 0
    for result in results:
        md_locals.append(result.md_local)
        md_globals.append(result.md_global)
        utilizations.append(result.mean_utilization)
        local_completed += result.local.completed
        global_completed += result.global_.completed
        preemptions += result.total_preemptions
        crashes += result.total_crashes
        lost += result.total_lost
        retries += result.retries
    return PointEstimate(
        config=config,
        md_local=interval_from_samples(md_locals, level),
        md_global=interval_from_samples(md_globals, level),
        utilization=sum(utilizations) / len(utilizations),
        local_completed=local_completed,
        global_completed=global_completed,
        preemptions=preemptions,
        crashes=crashes,
        lost=lost,
        retries=retries,
    )


def _run_batches_resilient(
    batches: List[List[SystemConfig]], processes: int
) -> List[List[RunResult]]:
    """Run config batches on a process pool, surviving worker death.

    A worker that dies mid-batch (OOM kill, a segfaulting extension, a
    stray ``os._exit``) raises :class:`BrokenProcessPool` for its future
    and poisons the whole executor, which would lose the entire sweep.
    Graceful degradation instead: collect every batch that did finish,
    resubmit the unfinished ones once on a fresh executor, and if that
    breaks too, run the remainder in-process.  Each path emits a
    :class:`RuntimeWarning` naming what happened.  Results are
    positionally identical on every path -- a batch is a pure function
    of its configs (fixed seeds), so *where* it runs cannot change
    *what* it returns.
    """
    results: List[Optional[List[RunResult]]] = [None] * len(batches)
    pending = list(range(len(batches)))
    for round_ in range(2):
        broken = False
        with ProcessPoolExecutor(max_workers=processes) as pool:
            futures = [
                (index, pool.submit(run_config_batch, batches[index]))
                for index in pending
            ]
            for index, future in futures:
                try:
                    results[index] = future.result()
                except BrokenProcessPool:
                    broken = True
        if not broken:
            return results
        pending = [index for index in pending if results[index] is None]
        if round_ == 0:
            warnings.warn(
                f"a sweep worker died; resubmitting {len(pending)} "
                f"unfinished batch(es) on a fresh pool",
                RuntimeWarning,
                stacklevel=3,
            )
    warnings.warn(
        f"the process pool broke twice; running the remaining "
        f"{len(pending)} batch(es) in-process",
        RuntimeWarning,
        stacklevel=3,
    )
    for index in pending:
        results[index] = run_config_batch(batches[index])
    return results


def run_grid(
    configs: Sequence[SystemConfig],
    replications: int,
    workers: int = 1,
    runner: Optional[Callable[[SystemConfig], RunResult]] = None,
    level: float = 0.95,
    batch_size: int = 0,
) -> List[PointEstimate]:
    """Run every grid cell in ``configs``, each ``replications`` times.

    This is the shared engine behind :func:`replicate`, :func:`sweep`, and
    the variation grids.  With ``workers > 1`` the *entire*
    (cell x replication) grid is flattened into one process pool and
    sliced into per-worker batches of ``batch_size`` runs (``0`` = auto,
    about four batches per worker; see :func:`resolve_batch_size`): each
    batch executes back to back in one warm worker interpreter
    (:func:`run_config_batch`), so the pool pays one dispatch and one
    result vector per batch instead of one IPC round trip per run.
    Results are deterministic regardless of ``workers`` or ``batch_size``:
    every run's seed is fixed up front, results are collected in
    submission order, and batches are contiguous slices of the flattened
    grid.  A worker dying mid-sweep does not lose the grid: the failed
    batches are resubmitted once, then fall back to in-process execution
    (see :func:`_run_batches_resilient`).

    An injected ``runner`` cannot cross process boundaries (closures
    generally do not pickle), so ``workers > 1`` with a runner emits a
    :class:`RuntimeWarning` and runs serially in-process.
    """
    workers = resolve_workers(workers)
    if workers > 1 and runner is not None:
        warnings.warn(
            "workers > 1 requires picklable work; the injected runner runs "
            "serially in-process",
            RuntimeWarning,
            stacklevel=2,
        )
    flat = [
        replication
        for config in configs
        for replication in _replication_configs(config, replications)
    ]
    # Never fork more processes than runs or CPU cores: oversubscribing a
    # CPU-bound pool only adds fork/IPC overhead.
    processes = min(workers, len(flat), multiprocessing.cpu_count())
    if processes > 1 and runner is None:
        size = resolve_batch_size(batch_size, len(flat), processes)
        batches = [flat[i:i + size] for i in range(0, len(flat), size)]
        flat_results = [
            result
            for batch in _run_batches_resilient(batches, processes)
            for result in batch
        ]
    else:
        run = runner or run_config
        flat_results = [run(config) for config in flat]
    return [
        _aggregate(
            config,
            flat_results[i * replications:(i + 1) * replications],
            level,
        )
        for i, config in enumerate(configs)
    ]


def replicate(
    config: SystemConfig,
    replications: int = 2,
    level: float = 0.95,
    runner: Optional[Callable[[SystemConfig], RunResult]] = None,
    workers: int = 1,
    batch_size: int = 0,
) -> PointEstimate:
    """Estimate one data point from ``replications`` independent runs.

    Replication ``i`` uses seed ``config.seed * 10_000 + i`` so that points
    of a sweep never share streams.  ``runner`` may be injected for testing
    (it defaults to building and running a real :class:`Simulation`).

    ``workers > 1`` (``0`` = all cores) runs the replications in a process
    pool -- worthwhile at FULL scale where each replication takes minutes.
    Results are deterministic either way (each replication's seed is fixed
    up front).  Parallelism here is inherently bounded by ``replications``:
    with a single replication there is nothing to fan out and the run
    proceeds serially -- parallelize across the whole grid with
    ``sweep(workers=...)`` instead.  ``workers > 1`` with an injected
    ``runner`` emits a :class:`RuntimeWarning` and runs serially, since
    closures generally do not pickle.
    """
    return run_grid(
        [config], replications, workers=workers, runner=runner, level=level,
        batch_size=batch_size,
    )[0]


@dataclass(frozen=True)
class SweepPoint:
    """One cell of a sweep: (x value, strategy) -> estimates."""

    x: float
    strategy: str
    estimate: PointEstimate


@dataclass(frozen=True)
class SweepResult:
    """A full parameter sweep over (x values x strategies)."""

    parameter: str
    x_values: Sequence[float]
    strategies: Sequence[str]
    points: Sequence[SweepPoint]

    @cached_property
    def _index(self) -> Dict[Tuple[float, str], SweepPoint]:
        """Points keyed by ``(x, strategy)``, built once on first lookup.

        ``point()``/``series()`` used to scan ``points`` linearly per call;
        rendering a figure table made that O(grid^2).
        """
        return {(p.x, p.strategy): p for p in self.points}

    def series(self, strategy: str, metric: str = "global") -> List[float]:
        """Miss-ratio series of one strategy along the sweep axis.

        ``metric`` is ``"global"`` or ``"local"``.
        """
        index = self._index
        points = [index[(x, strategy)] for x in self.x_values]
        if metric == "global":
            return [p.estimate.md_global.mean for p in points]
        return [p.estimate.md_local.mean for p in points]

    def point(self, x: float, strategy: str) -> SweepPoint:
        try:
            return self._index[(x, strategy)]
        except KeyError:
            raise KeyError(
                f"no point for x={x}, strategy={strategy!r}"
            ) from None


def sweep(
    base: SystemConfig,
    parameter: str,
    values: Sequence[float],
    strategies: Sequence[str],
    scale: RunScale = QUICK,
    runner: Optional[Callable[[SystemConfig], RunResult]] = None,
    workers: int = 1,
    batch_size: int = 0,
) -> SweepResult:
    """Run a grid of (parameter value x strategy) data points.

    ``parameter`` must be a field of :class:`SystemConfig` (e.g., ``load``
    or ``frac_local``).  Each grid cell gets a distinct base seed so the
    cells are statistically independent.  ``workers`` (``0`` = all cores)
    parallelizes the *whole* (value x strategy x replication) grid in one
    process pool, sliced into warm-interpreter batches of ``batch_size``
    runs (``0`` = auto; see :func:`run_grid`); results are identical to a
    single-worker run.
    """
    cells: List[Tuple[float, str]] = []
    configs: List[SystemConfig] = []
    for vi, value in enumerate(values):
        for si, strategy in enumerate(strategies):
            cells.append((value, strategy))
            configs.append(
                scale.apply(
                    base.with_(
                        **{parameter: value},
                        strategy=strategy,
                        seed=base.seed + 1_000 * vi + si,
                    )
                )
            )
    estimates = run_grid(
        configs, scale.replications, workers=workers, runner=runner,
        batch_size=batch_size,
    )
    return SweepResult(
        parameter=parameter,
        x_values=list(values),
        strategies=list(strategies),
        points=[
            SweepPoint(x=value, strategy=strategy, estimate=estimate)
            for (value, strategy), estimate in zip(cells, estimates)
        ],
    )
