"""The Sec. 4.2.2 / 4.3 model variations ("we have conducted extensive
experiments in which these assumptions are relaxed").

The paper summarizes six robustness checks without plots; each function
here runs one of them and returns a :class:`VariationResult` whose rows can
be printed, asserted on, and archived in EXPERIMENTS.md:

* V1 :func:`pex_error_sweep`       -- random error in execution estimates;
* V2 :func:`abort_policy_comparison` -- tardy tasks aborted at dispatch;
* V3 :func:`scheduler_comparison`  -- minimum-laxity-first local scheduler;
* V4 :func:`variable_subtasks`     -- per-task random subtask counts;
* V5 :func:`heterogeneous_nodes`   -- skewed per-node local loads;
* V6 :func:`slack_sweep`           -- EQF's edge vs. slack tightness
  ("EQF wins big in the intermediate range", Sec. 4.3).

The paper's conclusion for V1-V5 is that "the results do not change the
basic conclusions"; the corresponding benches assert exactly that: EQF
still beats UD on global miss ratio under every variation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..stats.tables import format_percent, render_table
from ..system.config import SystemConfig, baseline_config
from .runner import QUICK, PointEstimate, RunScale, run_grid


@dataclass(frozen=True)
class VariationRow:
    """One (setting, strategy) cell of a variation experiment."""

    setting: str
    strategy: str
    estimate: PointEstimate


@dataclass(frozen=True)
class VariationResult:
    """All rows of a variation experiment plus rendering."""

    variation_id: str
    title: str
    rows: Sequence[VariationRow]

    def table(self) -> str:
        headers = ["setting", "strategy", "MD_local", "MD_global", "gap"]
        body: List[List[object]] = [
            [
                row.setting,
                row.strategy,
                format_percent(row.estimate.md_local.mean),
                format_percent(row.estimate.md_global.mean),
                format_percent(row.estimate.gap),
            ]
            for row in self.rows
        ]
        return render_table(headers, body, title=f"{self.variation_id}: {self.title}")

    def row(self, setting: str, strategy: str) -> VariationRow:
        for row in self.rows:
            if row.setting == setting and row.strategy == strategy:
                return row
        raise KeyError(f"no row for setting={setting!r}, strategy={strategy!r}")


def _run_grid(
    variation_id: str,
    title: str,
    settings: Sequence[tuple],
    strategies: Sequence[str],
    scale: RunScale,
    base: Optional[SystemConfig] = None,
    workers: int = 1,
    batch_size: int = 0,
) -> VariationResult:
    """Run a (setting x strategy) grid.

    ``settings`` is a list of ``(label, config_transform)`` pairs where the
    transform maps a base config to the varied config.  ``workers``
    (``0`` = all cores) fans the whole grid out over one process pool,
    sliced into warm-interpreter batches of ``batch_size`` runs (``0`` =
    auto; see :func:`repro.experiments.runner.run_grid`).
    """
    base = base or baseline_config()
    cells: List[tuple] = []
    configs: List[SystemConfig] = []
    for si, (label, transform) in enumerate(settings):
        for ti, strategy in enumerate(strategies):
            cells.append((label, strategy))
            configs.append(
                scale.apply(
                    transform(base).with_(
                        strategy=strategy, seed=base.seed + 1_000 * si + ti
                    )
                )
            )
    estimates = run_grid(
        configs, scale.replications, workers=workers, batch_size=batch_size
    )
    rows = [
        VariationRow(setting=label, strategy=strategy, estimate=estimate)
        for (label, strategy), estimate in zip(cells, estimates)
    ]
    return VariationResult(variation_id=variation_id, title=title, rows=rows)


def pex_error_sweep(
    errors: Sequence[float] = (0.0, 0.25, 0.5, 0.9),
    strategies: Sequence[str] = ("UD", "EQF"),
    scale: RunScale = QUICK,
    workers: int = 1,
    batch_size: int = 0,
) -> VariationResult:
    """V1: random error in execution-time predictions.

    ``pex = ex * U[1 - e, 1 + e]``.  UD ignores estimates entirely, so its
    rows double as a control: they should move only by noise.
    """
    settings = [
        (f"error={e:g}", _setter(pex_error=e)) for e in errors
    ]
    return _run_grid(
        "V1", "random error in execution time estimates",
        settings, strategies, scale, workers=workers, batch_size=batch_size,
    )


def abort_policy_comparison(
    strategies: Sequence[str] = ("UD", "EQF"),
    scale: RunScale = QUICK,
    workers: int = 1,
    batch_size: int = 0,
) -> VariationResult:
    """V2: firm overload management (tardy tasks aborted at dispatch).

    Three settings: the baseline (run-to-completion), the sensible firm
    policy (abort work past its *natural* end-to-end deadline), and the
    blind firm policy (abort work past its *virtual* deadline).  The last
    one is the component behaviour the paper warns about for GF; our
    measurements show it also punishes EQF, whose tight virtual deadlines
    turn into spurious aborts of still-viable global tasks.
    """
    settings = [
        ("no-abort", _setter(overload_policy="no-abort")),
        ("abort-tardy", _setter(overload_policy="abort-tardy")),
        ("abort-virtual", _setter(overload_policy="abort-virtual")),
    ]
    return _run_grid(
        "V2", "overload policy: no-abort vs abort-tardy vs abort-virtual",
        settings, strategies, scale, workers=workers, batch_size=batch_size,
    )


def scheduler_comparison(
    strategies: Sequence[str] = ("UD", "EQF"),
    scale: RunScale = QUICK,
    workers: int = 1,
    batch_size: int = 0,
) -> VariationResult:
    """V3: minimum-laxity-first (and FCFS control) local schedulers."""
    settings = [
        ("EDF", _setter(scheduler="EDF")),
        ("MLF", _setter(scheduler="MLF")),
        ("FCFS", _setter(scheduler="FCFS")),
    ]
    return _run_grid(
        "V3", "local scheduling algorithm",
        settings, strategies, scale, workers=workers, batch_size=batch_size,
    )


def variable_subtasks(
    strategies: Sequence[str] = ("UD", "EQF"),
    scale: RunScale = QUICK,
    workers: int = 1,
    batch_size: int = 0,
) -> VariationResult:
    """V4: global tasks with a random number of subtasks (U{2..6})."""
    settings = [
        ("m=4 fixed", _setter(subtask_count_range=None)),
        ("m~U{2..6}", _setter(subtask_count_range=(2, 6))),
    ]
    return _run_grid(
        "V4", "variable number of subtasks per global task",
        settings, strategies, scale, workers=workers, batch_size=batch_size,
    )


def heterogeneous_nodes(
    strategies: Sequence[str] = ("UD", "EQF"),
    scale: RunScale = QUICK,
    workers: int = 1,
    batch_size: int = 0,
) -> VariationResult:
    """V5: some nodes carry higher local loads than others.

    The skewed setting gives two nodes double and two nodes half the
    average local arrival rate, keeping the total local load constant.
    """
    skew = (2.0, 2.0, 1.0, 1.0, 0.5, 0.5)
    settings = [
        ("homogeneous", _setter(local_load_weights=None)),
        ("skewed 2:2:1:1:.5:.5", _setter(local_load_weights=skew)),
    ]
    return _run_grid(
        "V5", "heterogeneous per-node local loads",
        settings, strategies, scale, workers=workers, batch_size=batch_size,
    )


def slack_sweep(
    flex_values: Sequence[float] = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0),
    strategies: Sequence[str] = ("UD", "EQF"),
    scale: RunScale = QUICK,
    workers: int = 1,
    batch_size: int = 0,
) -> VariationResult:
    """V6: EQF's advantage across slack tightness (``rel_flex`` sweep).

    The paper: "if slack is too tight ... many deadlines will be missed
    [whatever the policy]; if slack is too loose ... all tasks make their
    deadlines; in the intermediate range a smart SSP policy can make a
    difference and this is where EQF wins big."
    """
    settings = [
        (f"rel_flex={f:g}", _setter(rel_flex=f)) for f in flex_values
    ]
    return _run_grid(
        "V6", "EQF gain across slack tightness",
        settings, strategies, scale, workers=workers, batch_size=batch_size,
    )


def _setter(**overrides) -> Callable[[SystemConfig], SystemConfig]:
    """Make a config transform applying fixed overrides."""

    def transform(config: SystemConfig) -> SystemConfig:
        return config.with_(**overrides)

    return transform


#: All variations keyed by their DESIGN.md id.
VARIATIONS = {
    "V1": pex_error_sweep,
    "V2": abort_policy_comparison,
    "V3": scheduler_comparison,
    "V4": variable_subtasks,
    "V5": heterogeneous_nodes,
    "V6": slack_sweep,
}
