"""Per-figure experiment definitions (the paper's evaluation section).

Each function regenerates one figure (or narrative result) of the paper and
returns a :class:`FigureResult` that can be rendered as a numeric table and
an ASCII chart:

* :func:`fig2`    -- Fig. 2a/2b: the four SSP strategies vs. load;
* :func:`fig3`    -- Fig. 3: UD vs. EQF as ``frac_local`` varies;
* :func:`fig4`    -- Fig. 4: UD vs. DIV-1/DIV-2 (plus GF) vs. load;
* :func:`ssp_psp` -- Sec. 6: the four SSP x PSP combinations on
  serial-parallel tasks.

All functions accept a :class:`~repro.experiments.runner.RunScale`; the
default ``QUICK`` reproduces the paper's *orderings* in seconds-to-minutes,
and ``FULL`` matches the paper's run lengths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..stats.tables import format_percent, render_chart, render_table
from ..system.config import (
    SystemConfig,
    baseline_config,
    parallel_baseline_config,
    serial_parallel_config,
)
from .runner import QUICK, RunScale, SweepResult, sweep

#: Load axis of Fig. 2 ("load varies from 0.1 to 0.5").
FIG2_LOADS: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5)
#: Strategy set of Fig. 2.
FIG2_STRATEGIES: Sequence[str] = ("UD", "ED", "EQS", "EQF")

#: ``frac_local`` axis of Fig. 3 ("from 0.1 to 0.95").
FIG3_FRACTIONS: Sequence[float] = (0.1, 0.3, 0.5, 0.75, 0.9, 0.95)
FIG3_STRATEGIES: Sequence[str] = ("UD", "EQF")

#: Load axis of Fig. 4 (same range as Fig. 2's).
FIG4_LOADS: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5)
#: Fig. 4 proper compares UD, DIV-1, DIV-2; GF is discussed in Sec. 5.3 and
#: included here as the extra series the text describes.
FIG4_STRATEGIES: Sequence[str] = ("UD", "DIV-1", "DIV-2", "GF")

#: Load axis for the Sec. 6 serial-parallel experiment.
SSP_PSP_LOADS: Sequence[float] = (0.3, 0.5, 0.7)
SSP_PSP_STRATEGIES: Sequence[str] = ("UD-UD", "UD-DIV1", "EQF-UD", "EQF-DIV1")


@dataclass(frozen=True)
class FigureResult:
    """A regenerated paper figure: sweep data plus rendering helpers."""

    figure_id: str
    title: str
    x_name: str
    sweep: SweepResult

    def table(self) -> str:
        """Numeric table: one row per x value, MD columns per strategy."""
        headers = [self.x_name]
        for strategy in self.sweep.strategies:
            headers.append(f"MD_loc[{strategy}]")
            headers.append(f"MD_glo[{strategy}]")
        rows: List[List[object]] = []
        for x in self.sweep.x_values:
            row: List[object] = [x]
            for strategy in self.sweep.strategies:
                point = self.sweep.point(x, strategy)
                row.append(format_percent(point.estimate.md_local.mean))
                row.append(format_percent(point.estimate.md_global.mean))
            rows.append(row)
        return render_table(headers, rows, title=f"{self.figure_id}: {self.title}")

    def chart(self, metric: str = "global") -> str:
        """ASCII chart of the ``metric`` miss ratio vs. the sweep axis."""
        series: Dict[str, List[float]] = {
            strategy: self.sweep.series(strategy, metric)
            for strategy in self.sweep.strategies
        }
        return render_chart(
            list(self.sweep.x_values),
            series,
            title=f"{self.figure_id} ({metric} tasks): {self.title}",
            x_label=self.x_name,
            y_label="miss ratio",
        )

    def render(self) -> str:
        """Table plus both charts, ready to print."""
        parts = [self.table(), "", self.chart("global")]
        parts += ["", self.chart("local")]
        return "\n".join(parts)


def fig2(
    scale: RunScale = QUICK, seed: int = 1, workers: int = 1,
    batch_size: int = 0,
) -> FigureResult:
    """Fig. 2: SSP strategies on serial tasks as load varies.

    Expected shape (paper): local miss ratios are nearly strategy-
    independent (2a); global miss ratios split widely at high load with
    UD worst, EQF/EQS best, ED in between (2b); at load 0.5,
    ``MD_global(UD) ~ 40%`` vs ``MD_local(UD) ~ 24%``.
    """
    result = sweep(
        base=baseline_config(seed=seed),
        parameter="load",
        values=FIG2_LOADS,
        strategies=FIG2_STRATEGIES,
        scale=scale,
        workers=workers,
        batch_size=batch_size,
    )
    return FigureResult(
        figure_id="Fig2",
        title="SSP strategies vs load (serial global tasks)",
        x_name="load",
        sweep=result,
    )


def fig3(
    scale: RunScale = QUICK, seed: int = 2, workers: int = 1,
    batch_size: int = 0,
) -> FigureResult:
    """Fig. 3: effect of the local-task fraction under UD and EQF.

    Expected shape (paper): ``MD_global(UD)`` grows steadily with
    ``frac_local`` (global tasks face ever more "first-class" local
    competition); ``MD_local(UD)`` grows mildly; both EQF curves stay
    nearly flat -- EQF does not discriminate.
    """
    result = sweep(
        base=baseline_config(seed=seed),
        parameter="frac_local",
        values=FIG3_FRACTIONS,
        strategies=FIG3_STRATEGIES,
        scale=scale,
        workers=workers,
        batch_size=batch_size,
    )
    return FigureResult(
        figure_id="Fig3",
        title="Effect of varying the fraction of local tasks (load 0.5)",
        x_name="frac_local",
        sweep=result,
    )


def fig4(
    scale: RunScale = QUICK,
    seed: int = 3,
    include_gf: bool = True,
    workers: int = 1,
    batch_size: int = 0,
) -> FigureResult:
    """Fig. 4: PSP strategies on parallel tasks as load varies.

    Expected shape (paper): under UD globals miss roughly three times as
    often as locals; DIV-1 pulls the two classes together (at a mild local
    cost); DIV-2 is barely distinguishable from DIV-1 except at very high
    load; GF (Sec. 5.3) cuts the global miss ratio significantly further.
    """
    strategies = list(FIG4_STRATEGIES if include_gf else FIG4_STRATEGIES[:3])
    result = sweep(
        base=parallel_baseline_config(seed=seed),
        parameter="load",
        values=FIG4_LOADS,
        strategies=strategies,
        scale=scale,
        workers=workers,
        batch_size=batch_size,
    )
    return FigureResult(
        figure_id="Fig4",
        title="PSP strategies vs load (parallel global tasks)",
        x_name="load",
        sweep=result,
    )


def ssp_psp(
    scale: RunScale = QUICK, seed: int = 4, workers: int = 1,
    batch_size: int = 0,
) -> FigureResult:
    """Sec. 6: the four SSP x PSP combinations on serial-parallel tasks.

    Expected shape (paper): UD-UD misses vastly more global deadlines than
    local ones; applying either EQF or DIV-1 helps significantly with only
    a mild local increase; applying both keeps ``MD_global`` close to
    ``MD_local`` even under high load -- the benefits are additive.
    """
    result = sweep(
        base=serial_parallel_config(seed=seed),
        parameter="load",
        values=SSP_PSP_LOADS,
        strategies=SSP_PSP_STRATEGIES,
        scale=scale,
        workers=workers,
        batch_size=batch_size,
    )
    return FigureResult(
        figure_id="Sec6",
        title="SSP+PSP combinations (serial-parallel global tasks)",
        x_name="load",
        sweep=result,
    )
