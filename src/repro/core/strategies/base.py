"""Strategy interfaces and assignment contexts for the SDA problem.

An SDA strategy converts a *window* -- the arrival time and deadline of a
serial chain or a parallel group -- into a virtual deadline for one of its
member subtasks **at the moment that subtask is submitted**.  The paper's
key design point (Sec. 4) is exactly this late binding: serial strategies
see how much slack is actually left when the previous stage finishes.

Two small context dataclasses carry everything a strategy may consult.
Strategies must be pure functions of their context (no hidden state), which
is what makes them individually testable and composable into the recursive
serial-parallel assigner (:mod:`repro.core.strategies.combined`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


class PriorityClass:
    """Scheduler priority classes used by the Globals-First (GF) policy.

    Smaller values are served strictly first.  With every strategy except
    GF all work shares :data:`NORMAL`, and the node scheduler degenerates
    to its plain single-class discipline.
    """

    ELEVATED = 0
    NORMAL = 1


@dataclass(frozen=True, slots=True)
class SerialContext:
    """Everything an SSP strategy may look at when subtask ``i`` is submitted.

    Attributes
    ----------
    window_arrival:
        ``ar(T)`` of the serial chain (or of the enclosing virtual window
        for nested chains).
    window_deadline:
        ``dl(T)``: the end-to-end (or inherited virtual) deadline.
    submit_time:
        ``ar(Ti)``: the current time, when the previous stage has finished
        and subtask ``i`` is about to be submitted.
    remaining_pex:
        Predicted execution times ``(pex(Ti), pex(Ti+1), ..., pex(Tm))`` of
        the *remaining* subtasks, current one first.  Strategies that need
        no estimates (UD) simply ignore it.
    """

    window_arrival: float
    window_deadline: float
    submit_time: float
    remaining_pex: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.remaining_pex:
            raise ValueError("serial context needs at least the current subtask")
        if any(p < 0 for p in self.remaining_pex):
            raise ValueError(f"negative pex in {self.remaining_pex}")

    @property
    def current_pex(self) -> float:
        """Predicted execution time of the subtask being submitted."""
        return self.remaining_pex[0]

    @property
    def remaining_count(self) -> int:
        """Number of subtasks not yet completed (including the current one)."""
        return len(self.remaining_pex)

    @property
    def total_remaining_pex(self) -> float:
        """Sum of predicted execution times of all remaining subtasks."""
        return sum(self.remaining_pex)

    @property
    def remaining_slack(self) -> float:
        """Slack left for the whole chain as of ``submit_time``.

        ``dl(T) - ar(Ti) - sum_j pex(Tj)``: may be negative if the chain is
        already doomed; strategies still assign deadlines (soft real-time
        never aborts by default) and the negative slack propagates.
        """
        return self.window_deadline - self.submit_time - self.total_remaining_pex


@dataclass(frozen=True, slots=True)
class ParallelContext:
    """Everything a PSP strategy may look at when fanning out a group.

    Attributes
    ----------
    window_arrival:
        ``ar(T)`` of the parallel group (fork time for nested groups).
    window_deadline:
        ``dl(T)``: the group's (possibly virtual) deadline.
    fan_out:
        ``n``: the number of parallel subtasks in the group.
    index:
        Zero-based index of the subtask being assigned.
    pex:
        Predicted execution time of that subtask (available to strategies
        that want it; the paper's PSP strategies do not use it).
    """

    window_arrival: float
    window_deadline: float
    fan_out: int
    index: int
    pex: float = 0.0

    def __post_init__(self) -> None:
        if self.fan_out < 1:
            raise ValueError(f"fan_out must be >= 1, got {self.fan_out}")
        if not 0 <= self.index < self.fan_out:
            raise ValueError(f"index {self.index} outside fan-out {self.fan_out}")
        if self.pex < 0:
            raise ValueError(f"negative pex: {self.pex}")

    @property
    def window_length(self) -> float:
        """``dl(T) - ar(T)``: the total time the group has."""
        return self.window_deadline - self.window_arrival


def fast_serial_context(
    window_arrival: float,
    window_deadline: float,
    submit_time: float,
    remaining_pex: Tuple[float, ...],
) -> SerialContext:
    """Validation-free :class:`SerialContext` constructor.

    The process manager builds one context per serial stage of every global
    task; its inputs are structurally valid by construction (non-empty
    slices of a validated tree, non-negative pex from the distributions),
    so the frozen-dataclass ``__init__``/``__post_init__`` machinery is
    pure overhead there.
    """
    context = object.__new__(SerialContext)
    _set = object.__setattr__
    _set(context, "window_arrival", window_arrival)
    _set(context, "window_deadline", window_deadline)
    _set(context, "submit_time", submit_time)
    _set(context, "remaining_pex", remaining_pex)
    return context


def fast_parallel_context(
    window_arrival: float,
    window_deadline: float,
    fan_out: int,
    index: int,
    pex: float,
) -> ParallelContext:
    """Validation-free :class:`ParallelContext` constructor (see
    :func:`fast_serial_context`)."""
    context = object.__new__(ParallelContext)
    _set = object.__setattr__
    _set(context, "window_arrival", window_arrival)
    _set(context, "window_deadline", window_deadline)
    _set(context, "fan_out", fan_out)
    _set(context, "index", index)
    _set(context, "pex", pex)
    return context


class SSPStrategy:
    """A serial subtask deadline-assignment strategy (Sec. 4)."""

    #: Registry / display name, e.g. ``"EQF"``.
    name: str = "abstract-ssp"
    #: Whether the strategy consults execution-time estimates.  UD does
    #: not; systems without estimators can only use such strategies.
    uses_estimates: bool = True

    def assign(self, context: SerialContext) -> float:
        """Return the virtual deadline ``dl(Ti)``."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<SSP {self.name}>"


class PSPStrategy:
    """A parallel subtask deadline-assignment strategy (Sec. 5)."""

    name: str = "abstract-psp"
    uses_estimates: bool = False
    #: Priority class stamped on subtasks assigned by this strategy.  Only
    #: GF elevates it; see :class:`PriorityClass`.
    priority_class: int = PriorityClass.NORMAL

    def assign(self, context: ParallelContext) -> float:
        """Return the virtual deadline ``dl(Ti)``."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<PSP {self.name}>"
