"""The four serial subtask (SSP) strategies of Sec. 4.

All formulas are quoted from the paper, with ``i`` the index of the subtask
being submitted, ``m`` the chain length, ``ar(Ti)`` the submission time:

* **UD** (Ultimate Deadline)::

      dl(Ti) = dl(T)

* **ED** (Effective Deadline)::

      dl(Ti) = dl(T) - sum_{j=i+1..m} pex(Tj)

* **EQS** (Equal Slack)::

      dl(Ti) = ar(Ti) + pex(Ti)
             + [dl(T) - ar(Ti) - sum_{j=i..m} pex(Tj)] / (m - i + 1)

* **EQF** (Equal Flexibility)::

      dl(Ti) = ar(Ti) + pex(Ti)
             + [dl(T) - ar(Ti) - sum_{j=i..m} pex(Tj)]
               * pex(Ti) / sum_{j=i..m} pex(Tj)

The remaining slack may be negative (the chain is already late); the
formulas are applied unchanged, which shortens the virtual deadlines and
raises the priority of a struggling chain -- exactly the paper's intent.
"""

from __future__ import annotations

from dataclasses import dataclass

from .base import SerialContext, SSPStrategy


class UltimateDeadline(SSPStrategy):
    """UD: every subtask inherits the global deadline.

    Needs no execution-time estimates; the baseline everything else is
    measured against.  Its flaw (Sec. 4): time needed by later stages is
    treated as slack of the early stages, so early subtasks look lazily
    schedulable and global tasks become "second-class citizens".
    """

    name = "UD"
    uses_estimates = False

    def assign(self, context: SerialContext) -> float:
        return context.window_deadline


class EffectiveDeadline(SSPStrategy):
    """ED: subtract the predicted time of the following stages.

    Gives each subtask the latest start that could still meet ``dl(T)`` if
    everything downstream ran with zero queueing.  All remaining slack is
    still granted to the current subtask, so the "early stages eat the
    slack" problem persists in weakened form; the paper finds ED between
    UD and EQF.
    """

    name = "ED"

    def assign(self, context: SerialContext) -> float:
        downstream = context.total_remaining_pex - context.current_pex
        return context.window_deadline - downstream


class EqualSlack(SSPStrategy):
    """EQS: divide the remaining slack equally among remaining subtasks."""

    name = "EQS"

    def assign(self, context: SerialContext) -> float:
        share = context.remaining_slack / context.remaining_count
        return context.submit_time + context.current_pex + share


class EqualFlexibility(SSPStrategy):
    """EQF: divide the remaining slack in proportion to predicted times.

    Subtasks of the same task then have equal *flexibility*
    (slack / execution time), the paper's winning strategy.  When the total
    remaining estimate is zero the proportional rule is undefined; we fall
    back to the EQS equal split, which is the natural zero-work limit.
    """

    name = "EQF"

    def assign(self, context: SerialContext) -> float:
        total = context.total_remaining_pex
        if total == 0.0:
            share = context.remaining_slack / context.remaining_count
        else:
            share = context.remaining_slack * (context.current_pex / total)
        return context.submit_time + context.current_pex + share


@dataclass(frozen=True)
class EqualFlexibilityDamped(SSPStrategy):
    """EQF-AS: EQF with *artificial stages* (the paper's future-work idea).

    Sec. 7: "An interesting modification to EQF would control the extent of
    slack variability, perhaps by giving subtasks of tight global tasks
    less slack than EQF would give.  One trick would be to add artificial
    stages."

    This strategy appends ``artificial_stages`` phantom subtasks, each with
    the mean predicted execution time of the real remaining subtasks, to
    the EQF denominator.  Consequences:

    * every real subtask receives a smaller slack share than under plain
      EQF, so its virtual deadline is earlier and its priority higher;
    * the chain holds back a *reserve* -- even the final real subtask's
      virtual deadline stays ahead of the global deadline -- which absorbs
      late-stage queueing surprises;
    * a chain whose early stages run ahead of schedule re-inherits the
      reserve automatically (the shares are recomputed at each submission).

    ``artificial_stages = 0`` is exactly EQF.  The registry exposes one and
    two phantom stages as ``EQFAS1``/``EQFAS2`` (no inner hyphen, so
    combination names like ``EQFAS1-DIV1`` parse unambiguously); other
    counts via :func:`make_eqf_as`.
    """

    artificial_stages: int = 1

    def __post_init__(self) -> None:
        if self.artificial_stages < 0:
            raise ValueError(
                f"artificial stage count must be >= 0, got {self.artificial_stages}"
            )

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"EQFAS{self.artificial_stages}"

    def assign(self, context: SerialContext) -> float:
        real_total = context.total_remaining_pex
        count = context.remaining_count
        phantom_total = self.artificial_stages * (real_total / count)
        denominator = real_total + phantom_total
        if denominator == 0.0:
            share = context.remaining_slack / (count + self.artificial_stages)
        else:
            share = context.remaining_slack * (context.current_pex / denominator)
        return context.submit_time + context.current_pex + share


def make_eqf_as(artificial_stages: int) -> EqualFlexibilityDamped:
    """Construct an EQF-AS strategy with the given phantom stage count."""
    return EqualFlexibilityDamped(artificial_stages=artificial_stages)


#: The strategies of Sec. 4 keyed by the paper's abbreviations, plus the
#: Sec. 7 future-work extension (EQFAS1/EQFAS2).
SSP_STRATEGIES = {
    strategy.name: strategy
    for strategy in (
        UltimateDeadline(),
        EffectiveDeadline(),
        EqualSlack(),
        EqualFlexibility(),
        EqualFlexibilityDamped(1),
        EqualFlexibilityDamped(2),
    )
}
