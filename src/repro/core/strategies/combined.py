"""Recursive SSP + PSP composition for serial-parallel trees (Sec. 6).

    "A global deadline is broken down into virtual deadlines using either
    the SSP or the PSP strategies, depending on whether the global task is
    serial or parallel.  If a subtask is itself a complex serial-parallel
    task, the virtual deadline assigned to it is further decomposed."

:class:`DeadlineAssigner` pairs one SSP strategy with one PSP strategy and
offers the two window-splitting operations the runtime needs.  The paper's
four studied combinations (UD-UD, UD-DIV1, EQF-UD, EQF-DIV1) are provided
by :func:`parse_assigner`, but any pairing works.

The ``pex`` of a *complex* subtask is its tree envelope
(:meth:`~repro.core.task.TaskNode.total_pex`): serial children add,
parallel children take the max.  This is the only sensible single-number
summary and keeps the SSP formulas unchanged for nested chains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from ..task import TaskNode
from .base import (
    PSPStrategy,
    SSPStrategy,
    fast_parallel_context,
    fast_serial_context,
)
from .psp import PSP_STRATEGIES, make_div
from .ssp import SSP_STRATEGIES


@dataclass(frozen=True)
class Assignment:
    """Virtual deadline plus scheduling metadata for one subtask."""

    deadline: float
    priority_class: int


@dataclass(frozen=True)
class DeadlineAssigner:
    """An SSP strategy and a PSP strategy applied recursively to a tree."""

    ssp: SSPStrategy
    psp: PSPStrategy

    @property
    def name(self) -> str:
        """Paper-style combination name, e.g. ``"EQF-DIV1"``."""
        return f"{self.ssp.name}-{self.psp.name.replace('-', '')}"

    # -- the two window-splitting operations --------------------------------

    def serial_child_deadline(
        self,
        remaining: Sequence[TaskNode],
        now: float,
        window_arrival: float,
        window_deadline: float,
    ) -> Assignment:
        """Virtual deadline for ``remaining[0]``, submitted at ``now``.

        ``remaining`` holds the not-yet-executed children of a serial node,
        current one first.  Complex children contribute their tree envelope
        as ``pex``.
        """
        return Assignment(
            deadline=self.serial_deadline(
                tuple(child.total_pex() for child in remaining),
                now,
                window_arrival,
                window_deadline,
            ),
            priority_class=self.psp.priority_class,
        )

    def serial_deadline(
        self,
        remaining_pex: Tuple[float, ...],
        now: float,
        window_arrival: float,
        window_deadline: float,
    ) -> float:
        """Hot-path variant of :meth:`serial_child_deadline`.

        Takes the pre-computed pex envelope of the remaining children
        (current one first) and returns the bare deadline, skipping the
        :class:`Assignment` wrapper (its priority class is a per-assigner
        constant the caller can cache).  Runs once per serial stage of
        every global task.
        """
        return self.ssp.assign(
            fast_serial_context(
                window_arrival, window_deadline, now, remaining_pex
            )
        )

    def parallel_child_deadline(
        self,
        children: Sequence[TaskNode],
        index: int,
        now: float,
        window_deadline: float,
    ) -> Assignment:
        """Virtual deadline for ``children[index]`` of a group forked at ``now``.

        The group's window is ``[now, window_deadline]``: for a top-level
        parallel task ``now`` equals ``ar(T)``; for a nested group it is
        the fork time, which plays the role of ``ar`` in the DIV-x formula.
        """
        return Assignment(
            deadline=self.parallel_deadline(
                fan_out=len(children),
                index=index,
                pex=children[index].total_pex(),
                now=now,
                window_deadline=window_deadline,
            ),
            priority_class=self.psp.priority_class,
        )

    def parallel_deadline(
        self,
        fan_out: int,
        index: int,
        pex: float,
        now: float,
        window_deadline: float,
    ) -> float:
        """Hot-path variant of :meth:`parallel_child_deadline` (bare float,
        validation-free context; see :meth:`serial_deadline`)."""
        return self.psp.assign(
            fast_parallel_context(now, window_deadline, fan_out, index, pex)
        )


def parse_assigner(name: str) -> DeadlineAssigner:
    """Build an assigner from a paper-style combination name.

    Accepted forms (case-insensitive):

    * a single SSP name (``"EQF"``): PSP defaults to UD;
    * a single PSP name (``"DIV-1"``, ``"DIV1"``, ``"GF"``): SSP defaults
      to UD;
    * a hyphenated pair (``"EQF-DIV1"``, ``"UD-UD"``, ``"EQS-GF"``).

    ``DIV`` accepts the x value with or without the inner hyphen; arbitrary
    x like ``"DIV3"`` or ``"DIV-0.5"`` works too.
    """
    text = name.strip().upper()
    ssp_names = set(SSP_STRATEGIES)
    parts = text.split("-")

    # Re-join DIV-x forms: "EQF-DIV-2" -> ["EQF", "DIV-2"].
    merged: list[str] = []
    for part in parts:
        if merged and merged[-1].startswith("DIV") and _is_number(part):
            merged[-1] = f"{merged[-1]}-{part}"
        else:
            merged.append(part)
    parts = merged

    if len(parts) == 1:
        token = parts[0]
        if token in ssp_names:
            return DeadlineAssigner(SSP_STRATEGIES[token], PSP_STRATEGIES["UD"])
        psp = _parse_psp(token)
        if psp is not None:
            return DeadlineAssigner(SSP_STRATEGIES["UD"], psp)
        raise ValueError(f"unknown strategy {name!r}")

    if len(parts) == 2:
        ssp_token, psp_token = parts
        if ssp_token not in ssp_names:
            raise ValueError(f"unknown SSP strategy {ssp_token!r} in {name!r}")
        psp = _parse_psp(psp_token)
        if psp is None:
            raise ValueError(f"unknown PSP strategy {psp_token!r} in {name!r}")
        return DeadlineAssigner(SSP_STRATEGIES[ssp_token], psp)

    raise ValueError(f"cannot parse strategy combination {name!r}")


def _parse_psp(token: str) -> PSPStrategy | None:
    if token in PSP_STRATEGIES:
        return PSP_STRATEGIES[token]
    if token.startswith("DIV"):
        suffix = token[3:].lstrip("-")
        if _is_number(suffix):
            return make_div(float(suffix))
    return None


def _is_number(text: str) -> bool:
    try:
        float(text)
    except ValueError:
        return False
    return True


#: The four combinations studied in Sec. 6 of the paper.
PAPER_COMBINATIONS: Tuple[str, ...] = ("UD-UD", "UD-DIV1", "EQF-UD", "EQF-DIV1")
