"""The parallel subtask (PSP) strategies of Sec. 5.

* **UD** (Ultimate Deadline): ``dl(Ti) = dl(T)`` -- the natural deadline;
  the base case against which the others are compared.

* **DIV-x**::

      dl(Ti) = ar(T) + [dl(T) - ar(T)] / (n * x)

  The group's window is divided by ``x`` times the fan-out ``n``, pulling
  the subtasks' virtual deadlines earlier and raising their priority.  The
  promotion automatically grows with ``n``, which the paper highlights as
  the strategy's nice property.  ``x`` is tunable; the paper evaluates
  DIV-1 and DIV-2.

* **GF** (Globals First): subtasks keep the group deadline but are stamped
  with an *elevated priority class*; a node always serves elevated work
  before normal work, preserving EDF order within each class.  This is the
  most aggressive promotion possible.  Its caveat (Sec. 5.3): components
  that discard tasks whose (virtual) deadline has passed cannot use it,
  because GF leaves the virtual deadline untouched and relies purely on
  class priority.
"""

from __future__ import annotations

from dataclasses import dataclass

from .base import ParallelContext, PriorityClass, PSPStrategy


class UltimateDeadlineParallel(PSPStrategy):
    """UD for parallel groups: subtasks inherit the group deadline."""

    name = "UD"

    def assign(self, context: ParallelContext) -> float:
        return context.window_deadline


@dataclass(frozen=True)
class DivX(PSPStrategy):
    """DIV-x: divide the group's window by ``x * n``.

    ``x`` must be positive; larger ``x`` means earlier virtual deadlines.
    Note the virtual deadline always stays strictly later than ``ar(T)``
    for any finite ``x`` (the paper contrasts this with GF).
    """

    x: float = 1.0

    def __post_init__(self) -> None:
        if self.x <= 0:
            raise ValueError(f"DIV-x needs x > 0, got {self.x}")

    @property
    def name(self) -> str:  # type: ignore[override]
        # Render "DIV-1", "DIV-2", "DIV-0.5" the way the paper does.
        if float(self.x).is_integer():
            return f"DIV-{int(self.x)}"
        return f"DIV-{self.x:g}"

    def assign(self, context: ParallelContext) -> float:
        return (
            context.window_arrival
            + context.window_length / (context.fan_out * self.x)
        )


class GlobalsFirst(PSPStrategy):
    """GF: class priority for global subtasks, EDF within each class."""

    name = "GF"
    priority_class = PriorityClass.ELEVATED

    def assign(self, context: ParallelContext) -> float:
        return context.window_deadline


def make_div(x: float) -> DivX:
    """Construct a DIV-x strategy (convenience for sweeps over ``x``)."""
    return DivX(x=x)


#: Named PSP strategies.  DIV is exposed for x = 1, 2, 4 which cover the
#: paper's experiments; other x values via :func:`make_div`.
PSP_STRATEGIES = {
    "UD": UltimateDeadlineParallel(),
    "DIV-1": DivX(1.0),
    "DIV-2": DivX(2.0),
    "DIV-4": DivX(4.0),
    "GF": GlobalsFirst(),
}
