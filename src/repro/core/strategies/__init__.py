"""Subtask deadline-assignment (SDA) strategies — the paper's contribution.

* SSP (serial chains): :class:`UltimateDeadline` (UD),
  :class:`EffectiveDeadline` (ED), :class:`EqualSlack` (EQS),
  :class:`EqualFlexibility` (EQF);
* PSP (parallel groups): :class:`UltimateDeadlineParallel` (UD),
  :class:`DivX` (DIV-x), :class:`GlobalsFirst` (GF);
* :class:`DeadlineAssigner` composes one of each recursively over
  serial-parallel trees (Sec. 6); :func:`parse_assigner` builds one from a
  paper-style name such as ``"EQF-DIV1"``.
"""

from .base import (
    ParallelContext,
    PriorityClass,
    PSPStrategy,
    SerialContext,
    SSPStrategy,
)
from .combined import (
    PAPER_COMBINATIONS,
    Assignment,
    DeadlineAssigner,
    parse_assigner,
)
from .psp import (
    PSP_STRATEGIES,
    DivX,
    GlobalsFirst,
    UltimateDeadlineParallel,
    make_div,
)
from .ssp import (
    SSP_STRATEGIES,
    EffectiveDeadline,
    EqualFlexibility,
    EqualFlexibilityDamped,
    EqualSlack,
    UltimateDeadline,
    make_eqf_as,
)

__all__ = [
    "Assignment",
    "DeadlineAssigner",
    "DivX",
    "EffectiveDeadline",
    "EqualFlexibility",
    "EqualFlexibilityDamped",
    "EqualSlack",
    "GlobalsFirst",
    "PAPER_COMBINATIONS",
    "PSP_STRATEGIES",
    "PSPStrategy",
    "ParallelContext",
    "PriorityClass",
    "SSP_STRATEGIES",
    "SSPStrategy",
    "SerialContext",
    "UltimateDeadline",
    "UltimateDeadlineParallel",
    "make_div",
    "make_eqf_as",
    "parse_assigner",
]
