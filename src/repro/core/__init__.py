"""Task model, timing attributes, estimators, and SDA strategies."""

from .estimators import (
    Estimator,
    NoisyEstimator,
    PerfectEstimator,
    uniform_error_estimator,
)
from .notation import NotationError, format_tree, parse, tokenize
from .task import (
    LocalTask,
    ParallelTask,
    SerialTask,
    SimpleTask,
    TaskClass,
    TaskNode,
    chain_of,
    fan_of,
    parallel,
    serial,
)
from .timing import TimingRecord

__all__ = [
    "Estimator",
    "LocalTask",
    "NoisyEstimator",
    "NotationError",
    "ParallelTask",
    "PerfectEstimator",
    "SerialTask",
    "SimpleTask",
    "TaskClass",
    "TaskNode",
    "TimingRecord",
    "chain_of",
    "fan_of",
    "format_tree",
    "parallel",
    "parse",
    "serial",
    "tokenize",
    "uniform_error_estimator",
]
