"""Execution-time estimators (``pex`` models).

The paper's baseline assumes *perfect* prediction (``pex(X) = ex(X)``,
Table 1) and Sec. 4.3 relaxes it by injecting random error into the
estimate.  An estimator maps a real execution time to a predicted one; all
randomness comes from an explicit stream so experiments stay reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..sim.distributions import Distribution, UniformErrorFactor


class Estimator:
    """Maps real execution times to predicted ones."""

    def predict(self, ex: float, stream: random.Random) -> float:
        """Return ``pex`` for a task whose real execution time is ``ex``."""
        raise NotImplementedError

    @property
    def is_perfect(self) -> bool:
        """True if ``predict`` always returns ``ex`` exactly."""
        return False


@dataclass(frozen=True)
class PerfectEstimator(Estimator):
    """The baseline: ``pex(X) = ex(X)`` (Table 1, ``pex/ex = 1.0``)."""

    def predict(self, ex: float, stream: random.Random) -> float:
        return ex

    @property
    def is_perfect(self) -> bool:
        return True


@dataclass(frozen=True)
class NoisyEstimator(Estimator):
    """Multiplicative-error estimator: ``pex = ex * factor``.

    ``factor`` is drawn from ``factor_distribution`` per task, e.g.
    :class:`~repro.sim.distributions.UniformErrorFactor` for the Sec. 4.3
    "random error in the execution time predictions" variation.  Estimates
    are clamped to be non-negative.
    """

    factor_distribution: Distribution

    def predict(self, ex: float, stream: random.Random) -> float:
        factor = self.factor_distribution.sample(stream)
        return max(0.0, ex * factor)


def uniform_error_estimator(relative_error: float) -> Estimator:
    """Estimator with ``pex = ex * U[1 - e, 1 + e]``.

    ``relative_error = 0`` returns the perfect estimator, so sweeping the
    error from 0 upward (the V1 variation bench) needs no special-casing.
    """
    if relative_error == 0:
        return PerfectEstimator()
    return NoisyEstimator(UniformErrorFactor(relative_error))
