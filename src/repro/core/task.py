"""Serial-parallel task model (Sec. 3.1 of the paper).

The paper writes ``T = [T1 T2 ... Tn]`` for a *serial* global task whose
subtasks execute in order, and ``T = [T1 || T2 || ... || Tn]`` for a
*parallel* one whose subtasks all start together; ``T`` finishes when the
last subtask finishes.  These compose: a subtask may itself be a serial or
parallel task (a *complex subtask*), giving the class of serial-parallel
trees.

This module models that algebra:

* :class:`SimpleTask` -- a leaf executed at exactly one node;
* :class:`SerialTask` -- ordered composition;
* :class:`ParallelTask` -- fork/join composition;
* :class:`LocalTask` -- a task generated at (and executed at) one node,
  outside any global task.

Trees are *plans*: the nodes carry execution times and, once the workload
generator or an SDA strategy assigns them, deadlines.  The runtime
(:mod:`repro.system.process_manager`) walks the tree and submits leaves to
nodes.
"""

from __future__ import annotations

import itertools
from enum import Enum
from typing import Iterator, List, Optional, Sequence

from .timing import TimingRecord

_task_counter = itertools.count(1)


class TaskClass(Enum):
    """Which population a unit of work belongs to (Sec. 3.1)."""

    LOCAL = "local"
    GLOBAL = "global"


class TaskNode:
    """Base class of the serial-parallel task tree."""

    kind: str = "abstract"

    def __init__(self, name: Optional[str] = None) -> None:
        self.id = next(_task_counter)
        self.name = name or f"{type(self).__name__}-{self.id}"
        self.parent: Optional["TaskNode"] = None
        #: Timing attributes; ``ar``/``dl`` of inner nodes describe the
        #: node's *window* (assigned recursively by the combined strategy).
        self.timing: Optional[TimingRecord] = None

    # -- structure ---------------------------------------------------------

    @property
    def children(self) -> Sequence["TaskNode"]:
        return ()

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def leaves(self) -> Iterator["SimpleTask"]:
        """Yield all simple subtasks, left to right."""
        if self.is_leaf:
            yield self  # type: ignore[misc]
        else:
            for child in self.children:
                yield from child.leaves()

    def subtask_count(self) -> int:
        """Number of simple subtasks in the tree."""
        return sum(1 for _ in self.leaves())

    def depth(self) -> int:
        """Height of the tree (a leaf has depth 1)."""
        if self.is_leaf:
            return 1
        return 1 + max(child.depth() for child in self.children)

    # -- predicted / real execution envelopes ------------------------------

    def total_pex(self) -> float:
        """Predicted time to run this (sub)tree in isolation.

        Serial children add; parallel children take the maximum (the group
        is only as slow as its longest member).  This is the ``pex`` an SDA
        strategy uses for a *complex* subtask.
        """
        raise NotImplementedError

    def total_ex(self) -> float:
        """Real time to run this (sub)tree in isolation (no queueing)."""
        raise NotImplementedError

    # -- misc ---------------------------------------------------------------

    def validate(self) -> None:
        """Check structural sanity; raises ``ValueError`` on problems."""
        for child in self.children:
            if child.parent is not self:
                raise ValueError(f"{child!r} has wrong parent link")
            child.validate()

    def notation(self) -> str:
        """Render in the paper's bracket notation."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class SimpleTask(TaskNode):
    """A leaf subtask: one unit of work at exactly one node.

    ``ex`` is the real execution demand; ``node_index`` is filled by the
    workload generator (the paper picks it uniformly at random among the
    ``k`` nodes).
    """

    kind = "simple"

    def __init__(
        self,
        ex: float,
        pex: Optional[float] = None,
        name: Optional[str] = None,
        node_index: Optional[int] = None,
    ) -> None:
        super().__init__(name=name)
        if ex < 0:
            raise ValueError(f"negative execution time: {ex}")
        self.ex = float(ex)
        self.pex = float(pex) if pex is not None else self.ex
        if self.pex < 0:
            raise ValueError(f"negative predicted execution time: {self.pex}")
        self.node_index = node_index

    def total_pex(self) -> float:
        return self.pex

    def total_ex(self) -> float:
        return self.ex

    def notation(self) -> str:
        return self.name

    def validate(self) -> None:
        super().validate()
        if self.node_index is not None and self.node_index < 0:
            raise ValueError(f"negative node index: {self.node_index}")


class _CompositeTask(TaskNode):
    """Shared behaviour of serial and parallel composition nodes."""

    def __init__(self, children: Sequence[TaskNode], name: Optional[str] = None) -> None:
        super().__init__(name=name)
        if not children:
            raise ValueError(f"{type(self).__name__} needs at least one child")
        self._children: List[TaskNode] = list(children)
        for child in self._children:
            if child.parent is not None:
                raise ValueError(
                    f"{child!r} already belongs to {child.parent!r}; "
                    "task trees must not share nodes"
                )
            child.parent = self

    @property
    def children(self) -> Sequence[TaskNode]:
        return self._children


class SerialTask(_CompositeTask):
    """Ordered composition ``[T1 T2 ... Tn]``: Ti starts when Ti-1 ends."""

    kind = "serial"

    def total_pex(self) -> float:
        return sum(child.total_pex() for child in self._children)

    def total_ex(self) -> float:
        return sum(child.total_ex() for child in self._children)

    def notation(self) -> str:
        inner = " ".join(child.notation() for child in self._children)
        return f"[{inner}]"


class ParallelTask(_CompositeTask):
    """Fork/join composition ``[T1 || T2 || ... || Tn]``.

    All children become eligible at the same time; the group finishes when
    the *last* child finishes, so its execution envelope is the max over
    children.
    """

    kind = "parallel"

    def total_pex(self) -> float:
        return max(child.total_pex() for child in self._children)

    def total_ex(self) -> float:
        return max(child.total_ex() for child in self._children)

    def notation(self) -> str:
        inner = " || ".join(child.notation() for child in self._children)
        return f"[{inner}]"


class LocalTask:
    """A single-node task generated locally, competing with global subtasks.

    Not part of the tree algebra: a local task is always one unit of work
    with its own end-to-end deadline, at the node that generated it.
    """

    task_class = TaskClass.LOCAL

    def __init__(self, ex: float, node_index: int, name: Optional[str] = None) -> None:
        if ex < 0:
            raise ValueError(f"negative execution time: {ex}")
        self.id = next(_task_counter)
        self.name = name or f"LocalTask-{self.id}"
        self.ex = float(ex)
        self.node_index = node_index

    def __repr__(self) -> str:
        return f"<LocalTask {self.name!r} node={self.node_index}>"


# -- convenience constructors ------------------------------------------------


def serial(*children: TaskNode, name: Optional[str] = None) -> SerialTask:
    """Build ``[T1 T2 ... Tn]``."""
    return SerialTask(children, name=name)


def parallel(*children: TaskNode, name: Optional[str] = None) -> ParallelTask:
    """Build ``[T1 || T2 || ... || Tn]``."""
    return ParallelTask(children, name=name)


def chain_of(execution_times: Sequence[float], name: Optional[str] = None) -> SerialTask:
    """Build a flat serial task from a list of leaf execution times."""
    leaves = [SimpleTask(ex) for ex in execution_times]
    return SerialTask(leaves, name=name)


def fan_of(execution_times: Sequence[float], name: Optional[str] = None) -> ParallelTask:
    """Build a flat parallel task from a list of leaf execution times."""
    leaves = [SimpleTask(ex) for ex in execution_times]
    return ParallelTask(leaves, name=name)
