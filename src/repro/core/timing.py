"""Timing attributes of tasks (Sec. 3.1 of the paper).

Every task ``X`` -- local task, simple subtask, or global task -- carries
five attributes:

* ``ar(X)``  arrival time,
* ``dl(X)``  deadline,
* ``sl(X)``  slack,
* ``ex(X)``  real execution time,
* ``pex(X)`` predicted execution time,

related by the identity ``dl(X) = ar(X) + ex(X) + sl(X)``.  *Flexibility*
is ``fl(X) = sl(X) / ex(X)``: the larger it is, the less stringent the
timing constraint.

:class:`TimingRecord` stores ``ar``, ``ex``, ``pex``, and ``dl`` and
derives ``sl`` and ``fl``; it also records the *completion* time filled in
by the simulator so that tardiness can be computed afterwards.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional


@dataclass(slots=True)
class TimingRecord:
    """Mutable timing state attached to each task instance.

    ``ar`` and ``ex`` are set at creation.  ``pex`` defaults to ``ex``
    (perfect prediction, the paper's baseline) unless an estimator supplies
    a noisy value.  ``dl`` is assigned by the workload generator (for
    top-level tasks) or by an SDA strategy (for subtasks).  ``completed_at``
    is stamped by the node that finishes the task.
    """

    ar: float
    ex: float
    pex: Optional[float] = None
    dl: Optional[float] = None
    completed_at: Optional[float] = None
    #: Time at which the task started service (for waiting-time statistics).
    started_at: Optional[float] = None
    #: True if the task was discarded by an abort-tardy overload policy.
    aborted: bool = field(default=False)

    def __post_init__(self) -> None:
        if self.ex < 0:
            raise ValueError(f"negative execution time: {self.ex}")
        if self.pex is None:
            self.pex = self.ex
        if self.pex < 0:
            raise ValueError(f"negative predicted execution time: {self.pex}")

    # -- derived attributes ------------------------------------------------

    @property
    def sl(self) -> float:
        """Slack: ``dl - ar - ex``.  Requires the deadline to be assigned."""
        self._require_deadline()
        return self.dl - self.ar - self.ex

    @property
    def fl(self) -> float:
        """Flexibility: ``sl / ex`` (``inf`` for zero execution time)."""
        if self.ex == 0:
            return math.inf
        return self.sl / self.ex

    @property
    def has_deadline(self) -> bool:
        """True once a (virtual or end-to-end) deadline has been assigned."""
        return self.dl is not None

    # -- outcome -----------------------------------------------------------

    @property
    def finished(self) -> bool:
        """True once the task has completed service (aborted tasks never do)."""
        return self.completed_at is not None

    @property
    def missed(self) -> bool:
        """True if the task failed to meet its deadline.

        A task misses when it completes after ``dl`` or when it was aborted
        by the overload policy (an aborted task certainly did not meet its
        deadline).  Asking before completion/abort is an error -- metrics
        must only consult finished work.
        """
        self._require_deadline()
        if self.aborted:
            return True
        if self.completed_at is None:
            raise ValueError("task has not completed; tardiness unknown")
        return self.completed_at > self.dl

    @property
    def lateness(self) -> float:
        """Completion time minus deadline (positive = tardy)."""
        self._require_deadline()
        if self.completed_at is None:
            raise ValueError("task has not completed; lateness unknown")
        return self.completed_at - self.dl

    @property
    def response_time(self) -> float:
        """Completion time minus arrival time."""
        if self.completed_at is None:
            raise ValueError("task has not completed; response time unknown")
        return self.completed_at - self.ar

    @property
    def waiting_time(self) -> float:
        """Time spent queued before service began."""
        if self.started_at is None:
            raise ValueError("task has not started; waiting time unknown")
        return self.started_at - self.ar

    def laxity(self, now: float) -> float:
        """Remaining slack at time ``now``, using the *predicted* execution
        time: ``dl - now - pex``.

        This is the quantity a minimum-laxity-first scheduler compares.  It
        uses ``pex`` rather than ``ex`` because a real scheduler only knows
        the estimate.
        """
        self._require_deadline()
        return self.dl - now - self.pex

    def set_deadline_from_slack(self, slack: float) -> None:
        """Assign ``dl = ar + ex + slack`` (workload-generator convenience)."""
        if slack < 0:
            raise ValueError(f"negative slack: {slack}")
        self.dl = self.ar + self.ex + slack

    def _require_deadline(self) -> None:
        if self.dl is None:
            raise ValueError("deadline has not been assigned yet")

    def __repr__(self) -> str:
        dl = f"{self.dl:.4g}" if self.dl is not None else "?"
        return (
            f"TimingRecord(ar={self.ar:.4g}, ex={self.ex:.4g}, "
            f"pex={self.pex:.4g}, dl={dl})"
        )


def fast_timing(
    ar: float, ex: float, pex: float, dl: Optional[float] = None
) -> "TimingRecord":
    """Build a :class:`TimingRecord` without constructor validation.

    Hot-path constructor for workload generators and the process manager:
    they create one record per task, and their inputs come from
    distributions that are non-negative by construction, so the dataclass
    ``__init__``/``__post_init__`` checks are redundant there.  Everyone
    else should use ``TimingRecord(...)``.
    """
    timing = TimingRecord.__new__(TimingRecord)
    timing.ar = ar
    timing.ex = ex
    timing.pex = pex
    timing.dl = dl
    timing.completed_at = None
    timing.started_at = None
    timing.aborted = False
    return timing
