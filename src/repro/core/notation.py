"""Parser for the paper's serial-parallel bracket notation.

The paper writes serial tasks as ``[T1 T2 ... Tn]`` and parallel tasks as
``[T1 || T2 || ... || Tn]``.  This module parses that notation into
:class:`~repro.core.task.TaskNode` trees, with leaves written as execution
times, optionally named::

    parse("[1.0 2.5 0.5]")                 # serial chain of three leaves
    parse("[1 || 2 || 3]")                 # parallel fan
    parse("[fetch:1 [db:2 || net:0.5] 1]") # mixed serial-parallel
    parse("2.0")                           # a single simple task

Rules:

* inside one bracket pair the separators must be homogeneous -- either all
  whitespace (serial) or all ``||`` (parallel); mixing is a syntax error
  because the paper's algebra has no mixed node;
* a leaf is ``NUMBER`` or ``NAME:NUMBER`` where ``NUMBER`` is the real
  execution time (``pex`` defaults to ``ex``);
* a bracket with a single child denotes that child (no unary composites).
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple, Union

from .task import ParallelTask, SerialTask, SimpleTask, TaskNode


class NotationError(ValueError):
    """Raised on malformed serial-parallel notation."""


_TOKEN_RE = re.compile(
    r"""
    (?P<lbracket>\[)
  | (?P<rbracket>\])
  | (?P<par>\|\|)
  | (?P<leaf>[A-Za-z_][\w\-]*:[0-9]*\.?[0-9]+(?:[eE][-+]?\d+)?
           | [0-9]*\.?[0-9]+(?:[eE][-+]?\d+)?)
  | (?P<ws>\s+)
  | (?P<bad>.)
    """,
    re.VERBOSE,
)

Token = Tuple[str, str]


def tokenize(text: str) -> List[Token]:
    """Split ``text`` into ``(kind, value)`` tokens, dropping whitespace."""
    tokens: List[Token] = []
    for match in _TOKEN_RE.finditer(text):
        kind = match.lastgroup
        value = match.group()
        if kind == "ws":
            continue
        if kind == "bad":
            raise NotationError(f"unexpected character {value!r} in {text!r}")
        tokens.append((kind, value))
    return tokens


def parse(text: str) -> TaskNode:
    """Parse bracket notation into a task tree."""
    tokens = tokenize(text)
    if not tokens:
        raise NotationError("empty task notation")
    parser = _Parser(tokens, text)
    tree = parser.parse_node()
    parser.expect_end()
    return tree


def format_tree(tree: TaskNode) -> str:
    """Inverse of :func:`parse` up to leaf naming: uses execution times."""
    if tree.is_leaf:
        leaf: SimpleTask = tree  # type: ignore[assignment]
        return _format_number(leaf.ex)
    joiner = " || " if isinstance(tree, ParallelTask) else " "
    inner = joiner.join(format_tree(child) for child in tree.children)
    return f"[{inner}]"


def _format_number(value: float) -> str:
    text = f"{value:g}"
    return text


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, tokens: List[Token], source: str) -> None:
        self._tokens = tokens
        self._pos = 0
        self._source = source

    def _peek(self) -> Optional[Token]:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _next(self) -> Token:
        token = self._peek()
        if token is None:
            raise NotationError(f"unexpected end of notation in {self._source!r}")
        self._pos += 1
        return token

    def expect_end(self) -> None:
        if self._peek() is not None:
            kind, value = self._peek()  # type: ignore[misc]
            raise NotationError(
                f"trailing {value!r} after complete task in {self._source!r}"
            )

    def parse_node(self) -> TaskNode:
        kind, value = self._next()
        if kind == "leaf":
            return _make_leaf(value)
        if kind == "lbracket":
            return self._parse_composite()
        raise NotationError(f"unexpected {value!r} in {self._source!r}")

    def _parse_composite(self) -> TaskNode:
        children: List[TaskNode] = [self.parse_node()]
        mode: Optional[str] = None  # "serial" or "parallel", decided by 1st sep
        while True:
            token = self._peek()
            if token is None:
                raise NotationError(f"unclosed '[' in {self._source!r}")
            kind, value = token
            if kind == "rbracket":
                self._next()
                break
            if kind == "par":
                self._next()
                if mode == "serial":
                    raise NotationError(
                        f"mixed serial and parallel separators inside one "
                        f"bracket in {self._source!r}"
                    )
                mode = "parallel"
                children.append(self.parse_node())
            else:
                # Plain juxtaposition: a serial separator.
                if mode == "parallel":
                    raise NotationError(
                        f"mixed serial and parallel separators inside one "
                        f"bracket in {self._source!r}"
                    )
                mode = "serial"
                children.append(self.parse_node())
        if len(children) == 1:
            return children[0]
        if mode == "parallel":
            return ParallelTask(children)
        return SerialTask(children)


def _make_leaf(text: str) -> SimpleTask:
    if ":" in text:
        name, _, number = text.partition(":")
        return SimpleTask(float(number), name=name)
    return SimpleTask(float(text))
