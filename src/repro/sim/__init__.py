"""Discrete-event simulation kernel (the paper's DeNet substitute).

Public surface:

* :class:`Environment`, :class:`Event`, :class:`Timeout`, :class:`Process`,
  :class:`AllOf`, :class:`AnyOf` -- the event/process machinery;
* :class:`StreamFactory` -- reproducible named random streams;
* the distribution classes in :mod:`repro.sim.distributions`;
* :class:`Tally`, :class:`TimeWeighted`, :class:`Series` -- monitors;
* the exception hierarchy in :mod:`repro.sim.errors`.
"""

from .core import AllOf, AnyOf, Condition, ConditionValue, Environment, Event, Timeout
from .distributions import (
    Choice,
    Deterministic,
    DiscreteUniform,
    Distribution,
    Erlang,
    Exponential,
    LognormalErrorFactor,
    Uniform,
    UniformErrorFactor,
    exponential_interarrival,
)
from .errors import (
    EventLifecycleError,
    Interrupt,
    ProcessError,
    SimulationError,
    StopSimulation,
)
from .monitor import MeanTally, Series, Tally, TimeWeighted
from .process import Process
from .rng import StreamFactory

__all__ = [
    "AllOf",
    "AnyOf",
    "Choice",
    "Condition",
    "ConditionValue",
    "Deterministic",
    "DiscreteUniform",
    "Distribution",
    "Environment",
    "Erlang",
    "Event",
    "EventLifecycleError",
    "Exponential",
    "Interrupt",
    "LognormalErrorFactor",
    "MeanTally",
    "Process",
    "ProcessError",
    "Series",
    "SimulationError",
    "StopSimulation",
    "StreamFactory",
    "Tally",
    "TimeWeighted",
    "Timeout",
    "Uniform",
    "UniformErrorFactor",
    "exponential_interarrival",
]
