"""Random-variate distributions used by the workload model.

The paper's workload draws from three families:

* exponential execution times (local tasks and subtasks of global tasks;
  the total execution time of a global task is then Erlang);
* Poisson arrival processes (equivalently, exponential interarrival times);
* uniform slack.

We implement these plus a few extras used by the Sec. 4.3 variations
(deterministic values, bounded uniform error multipliers, discrete uniform
choice of subtask counts).  Every distribution takes an explicit
:class:`random.Random` stream at sampling time, so distribution objects are
immutable descriptions and all randomness flows through named streams
(:mod:`repro.sim.rng`).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Sequence


def _require_finite(name: str, value: float) -> None:
    """Reject NaN/inf parameters uniformly across the library."""
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value}")


def _require_positive(name: str, value: float) -> None:
    _require_finite(name, value)
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")


def _require_integer(name: str, value) -> None:
    """Reject non-integral counts (``Erlang(k=2.5)`` used to pass silently)."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"{name} must be an integer, got {value!r}")


class Distribution:
    """Base class: a described distribution sampled via an explicit stream."""

    def sample(self, stream: random.Random) -> float:
        """Draw one variate using ``stream``."""
        raise NotImplementedError

    def bind(self, stream: random.Random):
        """Return a zero-argument sampler bound to ``stream``.

        Hot loops draw millions of variates; a bound sampler skips the
        per-draw method dispatch (and lets subclasses pre-compute constant
        parameters).  Draws are identical to ``sample(stream)`` -- binding
        never changes the consumed random numbers.
        """
        sample = self.sample
        return lambda: sample(stream)

    @property
    def mean(self) -> float:
        """Analytic mean of the distribution."""
        raise NotImplementedError


@dataclass(frozen=True)
class Exponential(Distribution):
    """Exponential distribution with the given *mean* (not rate).

    The paper parameterizes by rate (``1/mu``); we store the mean because
    every formula in the paper divides by the rate anyway.
    """

    mean_value: float

    def __post_init__(self) -> None:
        _require_positive("exponential mean", self.mean_value)

    def sample(self, stream: random.Random) -> float:
        return stream.expovariate(1.0 / self.mean_value)

    def bind(self, stream: random.Random):
        # Inlined random.Random.expovariate (pure Python in CPython):
        # identical arithmetic, one call frame less per draw.
        uniform01 = stream.random
        rate = 1.0 / self.mean_value
        log = math.log
        return lambda: -log(1.0 - uniform01()) / rate

    @property
    def mean(self) -> float:
        return self.mean_value

    @property
    def rate(self) -> float:
        """Rate parameter lambda = 1 / mean."""
        return 1.0 / self.mean_value


@dataclass(frozen=True)
class Uniform(Distribution):
    """Continuous uniform distribution on ``[low, high]``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        _require_finite("uniform low", self.low)
        _require_finite("uniform high", self.high)
        if self.high < self.low:
            raise ValueError(f"uniform needs low <= high, got [{self.low}, {self.high}]")

    def sample(self, stream: random.Random) -> float:
        return stream.uniform(self.low, self.high)

    def bind(self, stream: random.Random):
        # Inlined random.Random.uniform: ``low + (high - low) * random()``
        # with the constant span pre-computed.  Identical arithmetic.
        uniform01 = stream.random
        low = self.low
        span = self.high - low
        return lambda: low + span * uniform01()

    @property
    def mean(self) -> float:
        return (self.low + self.high) / 2.0

    def scaled(self, factor: float) -> "Uniform":
        """Return a copy with both endpoints multiplied by ``factor``.

        Used to derive the global-task slack range from the local one via
        ``rel_flex`` (see :mod:`repro.system.workload`).
        """
        _require_finite("scale factor", factor)
        if factor < 0:
            raise ValueError(f"scale factor must be non-negative: {factor}")
        return Uniform(self.low * factor, self.high * factor)


@dataclass(frozen=True)
class Deterministic(Distribution):
    """Degenerate distribution: always returns ``value``."""

    value: float

    def __post_init__(self) -> None:
        _require_finite("deterministic value", self.value)

    def sample(self, stream: random.Random) -> float:
        return self.value

    @property
    def mean(self) -> float:
        return self.value


@dataclass(frozen=True)
class Erlang(Distribution):
    """Erlang distribution: sum of ``k`` exponentials with the given stage mean.

    The total execution time of an ``m``-subtask global task is Erlang with
    ``k = m`` stages; we expose the distribution mainly for analytical
    checks in tests.
    """

    k: int
    stage_mean: float

    def __post_init__(self) -> None:
        _require_integer("Erlang stage count k", self.k)
        if self.k < 1:
            raise ValueError(f"Erlang needs k >= 1 stages, got {self.k}")
        _require_positive("Erlang stage mean", self.stage_mean)

    def sample(self, stream: random.Random) -> float:
        rate = 1.0 / self.stage_mean
        return sum(stream.expovariate(rate) for _ in range(self.k))

    @property
    def mean(self) -> float:
        return self.k * self.stage_mean


@dataclass(frozen=True)
class DiscreteUniform(Distribution):
    """Uniform choice over the integers ``low..high`` inclusive.

    Used by the "variable number of subtasks" variation (Sec. 4.3).
    """

    low: int
    high: int

    def __post_init__(self) -> None:
        _require_integer("discrete uniform low", self.low)
        _require_integer("discrete uniform high", self.high)
        if self.high < self.low:
            raise ValueError(
                f"discrete uniform needs low <= high, got [{self.low}, {self.high}]"
            )

    def sample(self, stream: random.Random) -> int:
        return stream.randint(self.low, self.high)

    @property
    def mean(self) -> float:
        return (self.low + self.high) / 2.0


@dataclass(frozen=True)
class Choice(Distribution):
    """Uniform choice from an explicit sequence of values."""

    values: tuple

    def __init__(self, values: Sequence) -> None:
        object.__setattr__(self, "values", tuple(values))
        if not self.values:
            raise ValueError("Choice needs at least one value")
        for value in self.values:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValueError(f"Choice values must be numbers, got {value!r}")
            _require_finite("Choice value", value)

    def sample(self, stream: random.Random):
        return stream.choice(self.values)

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values)


@dataclass(frozen=True)
class UniformErrorFactor(Distribution):
    """Multiplicative estimation-error factor ``U[1 - e, 1 + e]``.

    Models the Sec. 4.3 "random error is introduced into the task execution
    time estimate" variation: ``pex(X) = ex(X) * factor``.  ``error = 0``
    reproduces the baseline's perfect prediction.
    """

    error: float

    def __post_init__(self) -> None:
        _require_finite("relative error", self.error)
        if not 0.0 <= self.error < 1.0:
            raise ValueError(f"relative error must lie in [0, 1), got {self.error}")

    def sample(self, stream: random.Random) -> float:
        if self.error == 0.0:
            return 1.0
        return stream.uniform(1.0 - self.error, 1.0 + self.error)

    @property
    def mean(self) -> float:
        return 1.0


@dataclass(frozen=True)
class LognormalErrorFactor(Distribution):
    """Multiplicative error factor that is lognormal with median 1.

    ``sigma`` is the standard deviation of the underlying normal; larger
    values give heavier-tailed over/under-estimation.  An alternative error
    model for robustness experiments (always positive, skewed).
    """

    sigma: float

    def __post_init__(self) -> None:
        _require_finite("sigma", self.sigma)
        if self.sigma < 0:
            raise ValueError(f"sigma must be non-negative: {self.sigma}")

    def sample(self, stream: random.Random) -> float:
        if self.sigma == 0.0:
            return 1.0
        return stream.lognormvariate(0.0, self.sigma)

    @property
    def mean(self) -> float:
        return math.exp(self.sigma ** 2 / 2.0)


@dataclass(frozen=True)
class Pareto(Distribution):
    """Pareto (power-law) distribution parameterized by *mean* and shape.

    Heavy-tailed service times for the scenario subsystem: the scale
    ``x_m`` is derived from the requested mean so that swapping the
    baseline's exponential service for a Pareto one keeps the load
    arithmetic exact (``mean = x_m * shape / (shape - 1)``).  ``shape``
    must exceed 1 for the mean to exist; shapes in ``(1, 2]`` have
    infinite variance -- the interesting heavy-tail regime.
    """

    mean_value: float
    shape: float

    def __post_init__(self) -> None:
        _require_positive("Pareto mean", self.mean_value)
        _require_finite("Pareto shape", self.shape)
        if self.shape <= 1.0:
            raise ValueError(
                f"Pareto shape must exceed 1 for a finite mean, got {self.shape}"
            )

    @property
    def scale(self) -> float:
        """Minimum value ``x_m`` implied by the mean and shape."""
        return self.mean_value * (self.shape - 1.0) / self.shape

    def sample(self, stream: random.Random) -> float:
        # Inverse CDF: x_m * U^(-1/shape).  Use 1 - random() like the
        # stdlib's paretovariate: random() can return exactly 0.0, which
        # would raise ZeroDivisionError on the negative power.
        return self.scale * (1.0 - stream.random()) ** (-1.0 / self.shape)

    def bind(self, stream: random.Random):
        uniform01 = stream.random
        scale = self.scale
        neg_inv_shape = -1.0 / self.shape
        return lambda: scale * (1.0 - uniform01()) ** neg_inv_shape

    @property
    def mean(self) -> float:
        return self.mean_value


@dataclass(frozen=True)
class Lognormal(Distribution):
    """Lognormal distribution parameterized by *mean* and log-space sigma.

    The underlying normal's location is ``ln(mean) - sigma^2 / 2`` so the
    arithmetic mean is exactly ``mean_value`` -- load arithmetic stays
    valid when a scenario swaps this in for exponential service.  Larger
    ``sigma`` gives a heavier right tail (CV^2 = exp(sigma^2) - 1).
    """

    mean_value: float
    sigma: float

    def __post_init__(self) -> None:
        _require_positive("lognormal mean", self.mean_value)
        _require_positive("lognormal sigma", self.sigma)

    @property
    def mu(self) -> float:
        """Location of the underlying normal."""
        return math.log(self.mean_value) - self.sigma ** 2 / 2.0

    def sample(self, stream: random.Random) -> float:
        return stream.lognormvariate(self.mu, self.sigma)

    def bind(self, stream: random.Random):
        lognormvariate = stream.lognormvariate
        mu = self.mu
        sigma = self.sigma
        return lambda: lognormvariate(mu, sigma)

    @property
    def mean(self) -> float:
        return self.mean_value


@dataclass(frozen=True)
class Hyperexponential(Distribution):
    """Two-phase hyperexponential with the given mean and CV^2 >= 1.

    Bursty interarrival times: a mixture of a fast and a slow exponential
    phase using the balanced-means parameterization, so ``(mean, cv2)``
    pins the first two moments.  ``cv2 = 1`` degenerates to the plain
    exponential (both phases equal).
    """

    mean_value: float
    cv2: float

    def __post_init__(self) -> None:
        _require_positive("hyperexponential mean", self.mean_value)
        _require_finite("hyperexponential cv2", self.cv2)
        if self.cv2 < 1.0:
            raise ValueError(
                f"hyperexponential cv2 must be >= 1, got {self.cv2}"
            )

    @property
    def phase_probability(self) -> float:
        """Probability of the fast phase (balanced means)."""
        return 0.5 * (1.0 + math.sqrt((self.cv2 - 1.0) / (self.cv2 + 1.0)))

    @property
    def rates(self) -> tuple:
        """Rates ``(rate_fast, rate_slow)`` of the two phases."""
        p = self.phase_probability
        return (2.0 * p / self.mean_value, 2.0 * (1.0 - p) / self.mean_value)

    def sample(self, stream: random.Random) -> float:
        p = self.phase_probability
        rate_fast, rate_slow = self.rates
        rate = rate_fast if stream.random() < p else rate_slow
        return stream.expovariate(rate)

    def bind(self, stream: random.Random):
        uniform01 = stream.random
        expovariate = stream.expovariate
        p = self.phase_probability
        rate_fast, rate_slow = self.rates

        def draw() -> float:
            return expovariate(rate_fast if uniform01() < p else rate_slow)

        return draw

    @property
    def mean(self) -> float:
        return self.mean_value


@dataclass(frozen=True)
class MMPP2Interarrival(Distribution):
    """Interarrival times of a 2-state Markov-modulated Poisson process.

    The process alternates between a *calm* and a *burst* state; state
    sojourns are exponential and arrivals within a state are Poisson.
    Parameterized so the long-run arrival rate is ``1 / mean_value``:

    * ``burst_ratio``    -- arrival-rate multiplier of the burst state
      relative to the calm state (``1`` degenerates to Poisson);
    * ``burst_fraction`` -- stationary fraction of time spent bursting;
    * ``cycle_time``     -- mean duration of one calm+burst cycle (sets
      how long bursts last, not how intense they are).

    The sampler is *stateful* (the modulating chain persists between
    draws), so this distribution must be used through :meth:`bind`; the
    state lives in the bound closure, giving each bound stream its own
    independent chain.
    """

    mean_value: float
    burst_ratio: float
    burst_fraction: float
    cycle_time: float

    def __post_init__(self) -> None:
        _require_positive("MMPP mean", self.mean_value)
        _require_finite("MMPP burst_ratio", self.burst_ratio)
        if self.burst_ratio < 1.0:
            raise ValueError(
                f"MMPP burst_ratio must be >= 1, got {self.burst_ratio}"
            )
        _require_finite("MMPP burst_fraction", self.burst_fraction)
        if not 0.0 < self.burst_fraction < 1.0:
            raise ValueError(
                f"MMPP burst_fraction must lie in (0, 1), got "
                f"{self.burst_fraction}"
            )
        _require_positive("MMPP cycle_time", self.cycle_time)

    @property
    def arrival_rates(self) -> tuple:
        """Rates ``(rate_calm, rate_burst)`` with the stationary mix equal
        to ``1 / mean_value``."""
        f = self.burst_fraction
        rate_calm = (1.0 / self.mean_value) / (
            f * self.burst_ratio + (1.0 - f)
        )
        return (rate_calm, rate_calm * self.burst_ratio)

    @property
    def sojourn_means(self) -> tuple:
        """Mean state sojourns ``(calm, burst)``."""
        f = self.burst_fraction
        return ((1.0 - f) * self.cycle_time, f * self.cycle_time)

    def sample(self, stream: random.Random) -> float:
        raise TypeError(
            "MMPP2Interarrival is stateful; draw through bind(stream)"
        )

    def bind(self, stream: random.Random):
        return _MMPP2Sampler(stream, self.arrival_rates, self.sojourn_means)

    @property
    def mean(self) -> float:
        """Long-run mean interarrival time."""
        return self.mean_value


class _MMPP2Sampler:
    """Bound, stateful MMPP(2) interarrival sampler.

    A callable object rather than a closure so that checkpointing can
    pickle it: the modulating chain's current state must survive a
    snapshot bit for bit (rebinding would reset the chain to calm).  All
    randomness lives in the bound stream, which pickles with its full
    Mersenne state.
    """

    __slots__ = ("stream", "rates", "sojourns", "state")

    def __init__(self, stream: random.Random, rates: tuple, sojourns: tuple):
        self.stream = stream
        self.rates = rates
        self.sojourns = sojourns
        self.state = 0  # start calm: deterministic, reproducible phase

    def __call__(self) -> float:
        # Competing exponentials: within the current state the next
        # arrival races the next state switch; memorylessness lets us
        # redraw both after each switch.
        expovariate = self.stream.expovariate
        rates = self.rates
        sojourns = self.sojourns
        state = self.state
        gap = 0.0
        while True:
            to_arrival = expovariate(rates[state])
            to_switch = expovariate(1.0 / sojourns[state])
            if to_arrival <= to_switch:
                self.state = state
                return gap + to_arrival
            gap += to_switch
            state = 1 - state

    def __getstate__(self) -> tuple:
        return (self.stream, self.rates, self.sojourns, self.state)

    def __setstate__(self, state: tuple) -> None:
        self.stream, self.rates, self.sojourns, self.state = state


def exponential_interarrival(rate: float) -> Exponential:
    """Interarrival-time distribution of a Poisson process with ``rate``.

    Convenience helper: the paper specifies arrivals as "Poisson with mean
    interarrival time 1/lambda"; this returns ``Exponential(1/rate)``.
    """
    if rate <= 0:
        raise ValueError(f"Poisson process rate must be positive: {rate}")
    return Exponential(1.0 / rate)
