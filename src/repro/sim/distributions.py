"""Random-variate distributions used by the workload model.

The paper's workload draws from three families:

* exponential execution times (local tasks and subtasks of global tasks;
  the total execution time of a global task is then Erlang);
* Poisson arrival processes (equivalently, exponential interarrival times);
* uniform slack.

We implement these plus a few extras used by the Sec. 4.3 variations
(deterministic values, bounded uniform error multipliers, discrete uniform
choice of subtask counts).  Every distribution takes an explicit
:class:`random.Random` stream at sampling time, so distribution objects are
immutable descriptions and all randomness flows through named streams
(:mod:`repro.sim.rng`).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Sequence


class Distribution:
    """Base class: a described distribution sampled via an explicit stream."""

    def sample(self, stream: random.Random) -> float:
        """Draw one variate using ``stream``."""
        raise NotImplementedError

    def bind(self, stream: random.Random):
        """Return a zero-argument sampler bound to ``stream``.

        Hot loops draw millions of variates; a bound sampler skips the
        per-draw method dispatch (and lets subclasses pre-compute constant
        parameters).  Draws are identical to ``sample(stream)`` -- binding
        never changes the consumed random numbers.
        """
        sample = self.sample
        return lambda: sample(stream)

    @property
    def mean(self) -> float:
        """Analytic mean of the distribution."""
        raise NotImplementedError


@dataclass(frozen=True)
class Exponential(Distribution):
    """Exponential distribution with the given *mean* (not rate).

    The paper parameterizes by rate (``1/mu``); we store the mean because
    every formula in the paper divides by the rate anyway.
    """

    mean_value: float

    def __post_init__(self) -> None:
        if self.mean_value <= 0:
            raise ValueError(f"exponential mean must be positive: {self.mean_value}")

    def sample(self, stream: random.Random) -> float:
        return stream.expovariate(1.0 / self.mean_value)

    def bind(self, stream: random.Random):
        # Inlined random.Random.expovariate (pure Python in CPython):
        # identical arithmetic, one call frame less per draw.
        uniform01 = stream.random
        rate = 1.0 / self.mean_value
        log = math.log
        return lambda: -log(1.0 - uniform01()) / rate

    @property
    def mean(self) -> float:
        return self.mean_value

    @property
    def rate(self) -> float:
        """Rate parameter lambda = 1 / mean."""
        return 1.0 / self.mean_value


@dataclass(frozen=True)
class Uniform(Distribution):
    """Continuous uniform distribution on ``[low, high]``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise ValueError(f"uniform needs low <= high, got [{self.low}, {self.high}]")

    def sample(self, stream: random.Random) -> float:
        return stream.uniform(self.low, self.high)

    def bind(self, stream: random.Random):
        # Inlined random.Random.uniform: ``low + (high - low) * random()``
        # with the constant span pre-computed.  Identical arithmetic.
        uniform01 = stream.random
        low = self.low
        span = self.high - low
        return lambda: low + span * uniform01()

    @property
    def mean(self) -> float:
        return (self.low + self.high) / 2.0

    def scaled(self, factor: float) -> "Uniform":
        """Return a copy with both endpoints multiplied by ``factor``.

        Used to derive the global-task slack range from the local one via
        ``rel_flex`` (see :mod:`repro.system.workload`).
        """
        if factor < 0:
            raise ValueError(f"scale factor must be non-negative: {factor}")
        return Uniform(self.low * factor, self.high * factor)


@dataclass(frozen=True)
class Deterministic(Distribution):
    """Degenerate distribution: always returns ``value``."""

    value: float

    def sample(self, stream: random.Random) -> float:
        return self.value

    @property
    def mean(self) -> float:
        return self.value


@dataclass(frozen=True)
class Erlang(Distribution):
    """Erlang distribution: sum of ``k`` exponentials with the given stage mean.

    The total execution time of an ``m``-subtask global task is Erlang with
    ``k = m`` stages; we expose the distribution mainly for analytical
    checks in tests.
    """

    k: int
    stage_mean: float

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"Erlang needs k >= 1 stages, got {self.k}")
        if self.stage_mean <= 0:
            raise ValueError(f"Erlang stage mean must be positive: {self.stage_mean}")

    def sample(self, stream: random.Random) -> float:
        rate = 1.0 / self.stage_mean
        return sum(stream.expovariate(rate) for _ in range(self.k))

    @property
    def mean(self) -> float:
        return self.k * self.stage_mean


@dataclass(frozen=True)
class DiscreteUniform(Distribution):
    """Uniform choice over the integers ``low..high`` inclusive.

    Used by the "variable number of subtasks" variation (Sec. 4.3).
    """

    low: int
    high: int

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise ValueError(
                f"discrete uniform needs low <= high, got [{self.low}, {self.high}]"
            )

    def sample(self, stream: random.Random) -> int:
        return stream.randint(self.low, self.high)

    @property
    def mean(self) -> float:
        return (self.low + self.high) / 2.0


@dataclass(frozen=True)
class Choice(Distribution):
    """Uniform choice from an explicit sequence of values."""

    values: tuple

    def __init__(self, values: Sequence) -> None:
        object.__setattr__(self, "values", tuple(values))
        if not self.values:
            raise ValueError("Choice needs at least one value")

    def sample(self, stream: random.Random):
        return stream.choice(self.values)

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values)


@dataclass(frozen=True)
class UniformErrorFactor(Distribution):
    """Multiplicative estimation-error factor ``U[1 - e, 1 + e]``.

    Models the Sec. 4.3 "random error is introduced into the task execution
    time estimate" variation: ``pex(X) = ex(X) * factor``.  ``error = 0``
    reproduces the baseline's perfect prediction.
    """

    error: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.error < 1.0:
            raise ValueError(f"relative error must lie in [0, 1), got {self.error}")

    def sample(self, stream: random.Random) -> float:
        if self.error == 0.0:
            return 1.0
        return stream.uniform(1.0 - self.error, 1.0 + self.error)

    @property
    def mean(self) -> float:
        return 1.0


@dataclass(frozen=True)
class LognormalErrorFactor(Distribution):
    """Multiplicative error factor that is lognormal with median 1.

    ``sigma`` is the standard deviation of the underlying normal; larger
    values give heavier-tailed over/under-estimation.  An alternative error
    model for robustness experiments (always positive, skewed).
    """

    sigma: float

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError(f"sigma must be non-negative: {self.sigma}")

    def sample(self, stream: random.Random) -> float:
        if self.sigma == 0.0:
            return 1.0
        return stream.lognormvariate(0.0, self.sigma)

    @property
    def mean(self) -> float:
        return math.exp(self.sigma ** 2 / 2.0)


def exponential_interarrival(rate: float) -> Exponential:
    """Interarrival-time distribution of a Poisson process with ``rate``.

    Convenience helper: the paper specifies arrivals as "Poisson with mean
    interarrival time 1/lambda"; this returns ``Exponential(1/rate)``.
    """
    if rate <= 0:
        raise ValueError(f"Poisson process rate must be positive: {rate}")
    return Exponential(1.0 / rate)
