"""Monomorphic discrete-event engine core (compile-ready).

This module is the kernel's hot loop, extracted from ``repro.sim.core``
so that it can optionally be compiled ahead of time (mypyc preferred,
Cython acceptable — see ``setup.py``).  ``repro.sim.core`` selects the
implementation at import time (``REPRO_KERNEL=python|compiled|auto``)
and re-exports the public API unchanged; nothing outside the ``sim``
package imports this module directly.

Design rules (what "compile-ready" means here)
----------------------------------------------

* **Monomorphic final classes.**  Every class has ``__slots__``; the
  event path touches no properties, no ``**kwargs``, and no dynamic
  dispatch.  :class:`Environment` and :class:`_Sleep` are ``@final``;
  :class:`Event` admits the two interpreted subclasses that live
  *outside* this module (``Process`` and ``Condition`` — the user-model
  layer, never on the hot path).
* **Plain tuples on the heap.**  An event-list entry is
  ``(time, seq, event)`` — a float, an int, an object.  Priority is
  folded into the sequence key: NORMAL events use the bare monotone
  sequence number, and the rare explicitly-urgent *delayed* schedule
  (``_schedule``) biases the key negative so it sorts ahead of every
  normal entry at the same timestamp.
* **The urgent queue is a deque, not heap entries.**  Kernel
  bookkeeping scheduled "at the current instant, ahead of normal
  events" (process start kicks, node wake-ups, preemption pokes) never
  touches the heap: it lands on a FIFO deque drained before every heap
  pop.  This is order-equivalent to the old ``(time, URGENT, seq)``
  entries — an urgent event always beat every heap entry at the same
  timestamp, heap entries are never in the past, and the deque
  preserves schedule order — while skipping a heappush/heappop pair
  and a tuple per call.
* **Pooled sleeps carry a single callback slot.**  The kernel-internal
  :class:`_Sleep` (service intervals, interarrival gaps — the dominant
  event traffic) holds exactly one callback in a dedicated slot
  instead of a callback list, so firing one is: pop, stamp the clock,
  recycle into the pool, call.  No list append at arm time, no list
  detach/clear/re-attach at fire time.
* **No exception machinery.**  The engine knows nothing about
  ``Interrupt``; interruption is a user-model compatibility feature
  implemented entirely in ``repro.sim.process`` on top of the generic
  ``_schedule_call`` primitive.

Determinism contract: this restructuring is *order-equivalent* to the
pre-split kernel.  Urgent events no longer consume sequence numbers,
which relabels the normal events' keys monotonically — every pairwise
comparison between heap entries is unchanged, so fixed-seed runs are
bit-identical (pinned by ``tests/system/test_golden_determinism.py``
with no re-pin).
"""

from __future__ import annotations

from collections import deque
from heapq import heapify, heappop, heappush
from itertools import count
from typing import Any, Callable, Deque, List, Optional, final

from .errors import EventLifecycleError, SimulationError, StopSimulation

try:  # pragma: no cover - only present when mypy/mypyc is installed
    from mypy_extensions import mypyc_attr
except ImportError:  # pure-Python and Cython builds

    def mypyc_attr(**_kwargs: Any) -> Callable[[type], type]:
        def decorator(cls: type) -> type:
            return cls

        return decorator


#: Default priority for scheduled events.  Lower values fire earlier among
#: events scheduled for the same simulation time.
NORMAL = 1

#: Priority used for "urgent" bookkeeping events that must run before any
#: normal event at the same timestamp (e.g., process resumption).
URGENT = 0

#: Sequence-key bias applied by :meth:`Environment._schedule` for
#: explicitly urgent *delayed* schedules: any biased key sorts ahead of
#: every unbiased (normal) key at the same timestamp.
_URGENT_BIAS = 1 << 62

#: Sequence key of the run-horizon sentinel: above any sequence number
#: the kernel will ever issue, so the sentinel sorts *after* every real
#: entry at the horizon timestamp (events due exactly at the horizon
#: still run, as the pre-split kernel's ``when > stop_at`` test allowed).
_HORIZON_KEY = 1 << 61

_INF = float("inf")

Callback = Callable[["Event"], None]

#: Lazily resolved :class:`~repro.sim.process.Process` (import cycle guard).
_Process: Any = None

#: Lazily resolved condition classes (they live in ``repro.sim.core``,
#: the user-model layer above this module).
_AllOf: Any = None
_AnyOf: Any = None


class _PendingType:
    """Sentinel for "no value yet"; distinct from ``None`` values."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<PENDING>"

    def __reduce__(self) -> str:
        # Pickle by global reference: ``is _PENDING`` identity checks must
        # keep working on a restored checkpoint.
        return "_PENDING"


_PENDING = _PendingType()


def _new_instance(cls: type) -> Any:
    """Reconstructor for pickled engine objects.

    Event-class ``__init__`` methods push onto the event list as a side
    effect, so unpickling must bypass them: allocate bare and let
    ``__setstate__`` fill the slots.  Module-level so pickles reference it
    by name under either kernel leg.
    """
    return cls.__new__(cls)


@mypyc_attr(allow_interpreted_subclasses=True)
class Event:
    """An occurrence that may happen at some point in simulation time.

    An event goes through up to three stages:

    1. *pending* -- created, not yet triggered;
    2. *triggered* -- given a value (or an exception) and placed on the
       event list;
    3. *processed* -- popped from the event list; its callbacks have run.

    Processes wait for events by ``yield``-ing them.

    The only subclasses outside this module are the user-model layer's
    ``Process`` and ``Condition`` (interpreted, off the hot path); the
    engine-internal subclasses are :class:`Timeout` and :class:`_Sleep`.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_processed", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Callbacks to invoke when the event is processed.  ``None`` once
        #: the event has been processed (guards against double-processing).
        self.callbacks: Optional[List[Callback]] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        self._processed: bool = False
        self._defused: bool = False

    # -- state inspection ------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value and is scheduled to fire."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been executed."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid only after triggering)."""
        if self._value is _PENDING:
            raise EventLifecycleError(f"{self!r} has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception, for failed events)."""
        if self._value is _PENDING:
            raise EventLifecycleError(f"{self!r} has not been triggered yet")
        return self._value

    # -- triggering ------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``.

        Returns ``self`` for chaining (``return event.succeed(x)``).
        """
        if self._value is not _PENDING:
            raise EventLifecycleError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        env = self.env
        heappush(env._queue, (env._now, env._next_seq(), self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Every process waiting on this event will have ``exception`` thrown
        into it.  If nobody is waiting and the failure is never *defused*,
        :meth:`Environment.step` re-raises it so that model bugs cannot pass
        silently.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self._value is not _PENDING:
            raise EventLifecycleError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        env = self.env
        heappush(env._queue, (env._now, env._next_seq(), self))
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled, silencing the crash-on-fail."""
        self._defused = True

    # -- composition -----------------------------------------------------

    def __and__(self, other: "Event") -> Any:
        global _AllOf
        if _AllOf is None:  # resolved once; the conditions live upstairs
            from .core import AllOf as _AllOf
        return _AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> Any:
        global _AnyOf
        if _AnyOf is None:
            from .core import AnyOf as _AnyOf
        return _AnyOf(self.env, [self, other])

    def __repr__(self) -> str:
        state = (
            "processed" if self._processed
            else "triggered" if self._value is not _PENDING
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"

    # -- pickling (checkpoint/resume) ------------------------------------

    def __reduce__(self) -> Any:
        # The state-third-tuple form, not constructor args: the event
        # graph is cyclic (env -> queue -> event -> env), and pickle can
        # only memoize this object between allocation and __setstate__.
        if type(self) is not Event:
            raise TypeError(
                f"cannot pickle {type(self).__name__}: generator processes "
                "and conditions are not checkpointable"
            )
        return (
            _new_instance,
            (Event,),
            (self.env, self.callbacks, self._value, self._ok,
             self._processed, self._defused),
        )

    def __setstate__(self, state: Any) -> None:
        (self.env, self.callbacks, self._value, self._ok,
         self._processed, self._defused) = state


class Timeout(Event):
    """An event that fires automatically after a fixed delay.

    Timeouts dominate public event traffic, so construction writes the
    slots directly and pushes onto the event list inline instead of
    chaining through ``Event.__init__`` + ``Environment._schedule``.
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._processed = False
        self._defused = False
        self.delay = delay
        heappush(env._queue, (env._now + delay, env._next_seq(), self))

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay!r} at {id(self):#x}>"

    def __reduce__(self) -> Any:
        if type(self) is not Timeout:
            raise TypeError(
                f"cannot pickle {type(self).__name__} via Timeout.__reduce__"
            )
        return (
            _new_instance,
            (Timeout,),
            (self.env, self.callbacks, self._value, self._ok,
             self._processed, self._defused, self.delay),
        )

    def __setstate__(self, state: Any) -> None:
        (self.env, self.callbacks, self._value, self._ok,
         self._processed, self._defused, self.delay) = state


@final
class _Sleep(Timeout):
    """A pooled timeout reserved for kernel-internal sleep cycles.

    Created only via :meth:`Environment._sleep`.  When the run loop
    finishes processing one of these it returns the object to the
    environment's pool for the next ``_sleep`` call, eliminating the
    allocations per service interval / interarrival gap that dominate
    event traffic.

    Unlike every other event, a sleep carries exactly **one** callback in
    the dedicated :attr:`callback` slot (its ``callbacks`` list is
    permanently ``None``): arming costs one slot store, firing costs one
    call, and there is no list to detach, clear, or re-attach.  The
    contract: callers must not retain the event after it fires — with one
    exception: the owner of the callback may :meth:`cancel` the sleep
    while it is still pending (this is how preemptive servers revoke a
    scheduled completion).
    """

    __slots__ = ("callback",)

    def __init__(
        self, env: "Environment", delay: float, callback: Callback
    ) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        self.env = env
        #: Permanently ``None``: generic event plumbing (processes,
        #: conditions, ``run(until=...)``) must never adopt a pooled
        #: sleep, and every ``callbacks is not None`` guard treats it as
        #: already spoken for.
        self.callbacks = None
        self._value = None
        self._ok = True
        self._processed = False
        self._defused = False
        self.delay = delay
        self.callback: Optional[Callback] = callback
        heappush(env._queue, (env._now + delay, env._next_seq(), self))

    def cancel(self) -> None:
        """Defuse this pending sleep: its callback will never run.

        Deleting from the middle of a binary heap is O(n), so the heap
        entry stays where it is; when the run loop pops it at the
        original expiry time, the silenced event carries no callback and
        is recycled into the pool exactly like a fired sleep.  The object
        therefore returns to service automatically -- callers just drop
        their reference after cancelling.

        Only legal while the sleep is pending: cancelling a processed
        sleep raises.  That guard is best-effort, though -- it catches a
        stale cancel only until the pool re-issues the object, after
        which a retained reference is indistinguishable from the new
        owner's (a stale cancel would silently clear the new owner's
        callback).  The pool contract is the real protection: drop the
        reference once the sleep has fired or been cancelled.
        """
        if self._processed:
            raise EventLifecycleError(
                f"cannot cancel {self!r}: it has already been processed"
            )
        self.callback = None

    def __repr__(self) -> str:
        return f"<_Sleep delay={self.delay!r} at {id(self):#x}>"

    def __reduce__(self) -> Any:
        return (
            _new_instance,
            (_Sleep,),
            (self.env, self.delay, self.callback,
             self._processed, self._defused),
        )

    def __setstate__(self, state: Any) -> None:
        (self.env, self.delay, self.callback,
         self._processed, self._defused) = state
        # Fixed for the object's whole lifetime (see __init__).
        self.callbacks = None
        self._value = None
        self._ok = True


@final
class _Call:
    """A bare single-callback bookkeeping event (``_schedule_call``).

    The kernel's "call this at the current time" primitive: process
    start kicks, already-fired-target resumptions, node wake-ups,
    preemption pokes, and deferred ``on_done`` continuations are all
    one callback with a payload -- no callback list, no lifecycle, no
    ``env`` backref.  Dispatching one is four slot reads and a call.

    Callers receiving a ``_Call`` as their event argument may read
    ``_ok``/``_value``/``_defused`` and set ``_defused`` (the process
    resume protocol); nothing else is supported.  Long-lived callers
    (node wake, preemption poke) may pool one instance and re-enqueue
    it after it fires -- the callback slot is never detached, so
    re-arming is free (guard against double-enqueueing yourself).
    """

    __slots__ = ("callback", "_value", "_ok", "_defused")

    def __init__(
        self,
        callback: Callback,
        ok: bool = True,
        value: Any = None,
        defused: bool = False,
    ) -> None:
        self.callback = callback
        self._value = value
        self._ok = ok
        self._defused = defused

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<_Call {self.callback!r} at {id(self):#x}>"

    def __reduce__(self) -> Any:
        # State form even though _Call has no env backref: the callback
        # is usually a bound method of an object that (transitively)
        # holds this very event, so the graph can still be cyclic.
        return (
            _new_instance,
            (_Call,),
            (self.callback, self._value, self._ok, self._defused),
        )

    def __setstate__(self, state: Any) -> None:
        self.callback, self._value, self._ok, self._defused = state


@final
class Environment:
    """Simulation clock, event list, and process launcher.

    Typical use::

        env = Environment()

        def worker(env):
            yield env.timeout(5)
            print("done at", env.now)

        env.process(worker(env))
        env.run(until=100)
    """

    __slots__ = (
        "_now", "_queue", "_next_seq", "_urgent", "_active_process",
        "_sleep_pool",
    )

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now: float = float(initial_time)
        #: The event list: a binary heap of ``(time, seq, event)`` entries.
        self._queue: List[Any] = []
        #: Monotone sequence-key source for heap entries (FIFO among
        #: same-time events); bound ``count().__next__`` is the fastest
        #: interpreted increment.
        self._next_seq: Callable[[], int] = count().__next__
        #: Urgent bookkeeping calls due at the current instant, drained
        #: FIFO before every heap pop (see the module docstring).
        self._urgent: Deque[_Call] = deque()
        self._active_process: Any = None  # set by Process while running
        self._sleep_pool: List[_Sleep] = []

    # -- clock -----------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Any:
        """The :class:`~repro.sim.process.Process` currently executing."""
        return self._active_process

    # -- event construction ----------------------------------------------

    def event(self) -> Event:
        """Create a new, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def _sleep(self, delay: float, callback: Callback) -> _Sleep:
        """Pooled single-callback timeout for kernel-internal hot loops.

        Same firing semantics as ``timeout(delay)`` with one callback
        attached, but the returned event is recycled by the run loop once
        it has fired, so callers (node servers, workload sources) MUST
        NOT retain it afterwards -- except to :meth:`_Sleep.cancel` it
        while still pending.  Use :meth:`timeout` anywhere the event may
        outlive its firing.
        """
        pool = self._sleep_pool
        if not pool:
            return _Sleep(self, delay, callback)
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        event = pool.pop()
        event.delay = delay
        event.callback = callback
        event._processed = False
        # _value is None and _ok True for the object's whole lifetime.
        heappush(self._queue, (self._now + delay, self._next_seq(), event))
        return event

    def all_of(self, events: Any) -> Any:
        """Create an event that fires once all of ``events`` have fired."""
        global _AllOf
        if _AllOf is None:
            from .core import AllOf as _AllOf
        return _AllOf(self, events)

    def any_of(self, events: Any) -> Any:
        """Create an event that fires once any of ``events`` has fired."""
        global _AnyOf
        if _AnyOf is None:
            from .core import AnyOf as _AnyOf
        return _AnyOf(self, events)

    def process(self, generator: Any) -> Any:
        """Start a new process running ``generator``."""
        global _Process
        if _Process is None:  # resolved once; avoids a per-call import
            from .process import Process as _Process
        return _Process(self, generator)

    # -- scheduling ------------------------------------------------------

    def _schedule(self, event: Event, priority: int, delay: float) -> None:
        """Place a triggered event on the event list.

        The generic (priority, delay) path: priorities below NORMAL bias
        the sequence key negative so the entry sorts ahead of every
        normal entry at its timestamp.  Kernel code never schedules
        urgent work with a delay -- zero-delay urgent dispatch goes
        through :meth:`_schedule_call`'s deque instead.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        seq = self._next_seq()
        if priority < NORMAL:
            seq -= _URGENT_BIAS
        heappush(self._queue, (self._now + delay, seq, event))

    def _schedule_call(
        self,
        callback: Callback,
        ok: bool = True,
        value: Any = None,
        defused: bool = False,
        priority: int = URGENT,
    ) -> _Call:
        """Schedule a lightweight single-callback event at the current time.

        Internal fast path for kernel bookkeeping (start-of-process kicks,
        already-fired-target resumptions, node server wake-ups, deferred
        completion continuations): builds a bare :class:`_Call`, by
        default with :data:`URGENT` priority so it runs before any normal
        event at the same timestamp.  Urgent calls land on the FIFO deque
        (never the heap); :data:`NORMAL` calls take a regular heap entry
        at the current time.
        """
        event = _Call.__new__(_Call)
        event.callback = callback
        event._value = value
        event._ok = ok
        event._defused = defused
        if priority == URGENT:
            self._urgent.append(event)
        else:
            heappush(self._queue, (self._now, self._next_seq(), event))
        return event

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if self._urgent:
            return self._now
        queue = self._queue
        return queue[0][0] if queue else _INF

    def _seq_peek(self) -> int:
        """The next heap sequence number, without consuming it.

        ``count.__next__`` cannot be read non-destructively, so this
        draws the number and rebinds a fresh counter starting at the
        same value -- the following real ``_next_seq()`` call yields
        exactly this number again.  Used by checkpointing (progress
        triggers, and snapshotting the counter position).
        """
        seq = self._next_seq()
        self._next_seq = count(seq).__next__
        return seq

    # -- pickling (checkpoint/resume) ------------------------------------

    def __reduce__(self) -> Any:
        # _active_process is only non-None while a Process is executing;
        # snapshots are taken between events, and processes are not
        # checkpointable anyway, so it is deliberately not captured.
        return (
            _new_instance,
            (Environment,),
            (self._now, self._seq_peek(), list(self._queue),
             list(self._urgent), list(self._sleep_pool)),
        )

    def __setstate__(self, state: Any) -> None:
        now, seq, queue, urgent, pool = state
        self._now = now
        self._queue = queue
        self._next_seq = count(seq).__next__
        self._urgent = deque(urgent)
        self._active_process = None
        self._sleep_pool = pool

    def step(self) -> None:
        """Process the single next event.

        The reference implementation of one :meth:`run` loop iteration
        (pinned against the inlined loop by
        ``tests/sim/test_engine_kernels.py``): drain the urgent deque
        first, then pop the heap; pooled sleeps fire their single
        callback and recycle, every other event runs its callback list
        and re-raises undefused failures.  Raises
        :class:`SimulationError` when no event is left.
        """
        urgent = self._urgent
        if urgent:
            call = urgent.popleft()
            call.callback(call)
            if not call._ok and not call._defused:
                exc = call._value
                raise exc
            return
        if not self._queue:
            raise SimulationError("no more events to process")
        when, _seq, event = heappop(self._queue)
        self._now = when
        if type(event) is _Sleep:
            event._processed = True
            self._sleep_pool.append(event)
            sleep_callback = event.callback
            if sleep_callback is not None:
                sleep_callback(event)
            return
        if type(event) is _Call:
            event.callback(event)
            if not event._ok and not event._defused:
                exc = event._value
                raise exc
            return
        callbacks = event.callbacks
        event.callbacks = None
        event._processed = True
        for callback in callbacks:  # type: ignore[union-attr]
            callback(event)
        if not event._ok and not event._defused:
            # Nobody handled the failure: crash loudly per the Zen of Python.
            exc = event._value
            raise exc

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` -- run until the event list is exhausted;
        * a number -- run until the clock reaches that time;
        * an :class:`Event` -- run until that event is processed, returning
          its value.
        """
        stop_event: Optional[Event] = None
        sentinel: Optional[_Call] = None
        stop_at = _INF
        if until is not None:
            if isinstance(until, Event):
                stop_event = until
                if until.callbacks is not None:
                    until.callbacks.append(_stop_simulation)
                elif until._processed:
                    return until._value
                else:
                    # Pending with no callback list: a pooled kernel
                    # sleep.  It is recycled at expiry, so waiting on it
                    # is always a bug -- fail loudly.
                    raise SimulationError(
                        f"run(until={until!r}): cannot wait on a pooled "
                        "kernel sleep; use env.timeout(delay) instead"
                    )
            else:
                stop_at = float(until)
                if stop_at < self._now:
                    raise SimulationError(
                        f"until={stop_at} lies in the past (now={self._now})"
                    )
                # The time horizon is one *sentinel heap entry* instead of
                # a per-event ``when > stop_at`` comparison: the sentinel
                # sorts after every real entry at ``stop_at`` (its key is
                # above any sequence number ever issued), so all events due
                # at or before the horizon run first, then the sentinel
                # advances the clock to ``stop_at`` (the pop does it) and
                # stops the loop.  Events beyond the horizon simply stay
                # in the heap for a later ``run()``.
                sentinel = _Call(_horizon_reached)
                heappush(self._queue, (stop_at, _HORIZON_KEY, sentinel))

        # Inlined copy of step() -- see that method for the commented
        # reference semantics.  Dispatching an event here costs one pop
        # plus the callback call(s); the method-call version pays a
        # peek(), a step() call, and several attribute lookups per event,
        # which at millions of events per run dominates wall-clock time.
        queue = self._queue
        urgent = self._urgent
        pop = heappop
        pool_append = self._sleep_pool.append
        sleep_cls = _Sleep
        call_cls = _Call
        try:
            while True:
                if urgent:
                    call = urgent.popleft()
                    call.callback(call)
                    if not call._ok and not call._defused:
                        raise call._value
                    continue
                if not queue:
                    break
                when, seq, event = pop(queue)
                self._now = when
                if type(event) is sleep_cls:
                    # The dominant event kind: recycle into the pool (the
                    # callback may immediately re-arm this very object)
                    # and fire the single callback slot -- empty when the
                    # sleep was cancelled.
                    event._processed = True
                    pool_append(event)
                    sleep_callback = event.callback
                    if sleep_callback is not None:
                        sleep_callback(event)
                    continue
                if type(event) is call_cls:
                    # NORMAL-priority bookkeeping (deferred completion
                    # continuations) -- or the horizon sentinel, which
                    # raises StopSimulation from its callback.
                    event.callback(event)
                    if not event._ok and not event._defused:
                        raise event._value
                    continue
                callbacks = event.callbacks
                event.callbacks = None
                event._processed = True
                for callback in callbacks:  # type: ignore[union-attr]
                    callback(event)
                if not event._ok and not event._defused:
                    raise event._value
        except StopSimulation as stop:
            return stop.value
        else:
            if stop_event is not None and stop_event._value is _PENDING:
                raise SimulationError(
                    "run(until=event) exhausted the event list before the "
                    "event was triggered"
                )
        finally:
            if sentinel is not None and not sentinel._defused:
                # The loop exited by some other means (an error, or a
                # StopSimulation raised by user code) before the horizon:
                # withdraw the unconsumed sentinel so a later run() does
                # not stop at this horizon.  Runs are rare and the heap is
                # small, so the linear remove is irrelevant.
                try:
                    queue.remove((stop_at, _HORIZON_KEY, sentinel))
                except ValueError:  # pragma: no cover - defensive
                    pass
                else:
                    heapify(queue)
        return None


def _horizon_reached(call: "_Call") -> None:
    """Callback of the run-horizon sentinel (see :meth:`Environment.run`).

    Marks the sentinel consumed (``_defused``) so ``run`` knows the stop
    came from the horizon, then stops the loop with a ``None`` result.
    """
    call._defused = True
    raise StopSimulation(None)


def _stop_simulation(event: Event) -> None:
    """Callback attached to ``run(until=event)`` targets."""
    raise StopSimulation(event._value)
