"""Observation collection for simulations.

Two collector flavors, mirroring classic simulation-language monitors
(DeNet, SIMSCRIPT):

* :class:`Tally` -- observation-based statistics (one value per completed
  task): count, mean, variance, min/max, via Welford's online algorithm.
* :class:`TimeWeighted` -- time-weighted statistics for piecewise-constant
  signals such as queue length or server utilization.

Both support a *warm-up reset*: experiments discard the transient start-up
phase by calling :meth:`reset` at the end of the warm-up period.

For the *"what is the system doing now"* view that end-of-run means cannot
express, :class:`DecayedMean` and :class:`DecayedRate` maintain
exponentially time-decayed estimates (window parameter ``tau`` in
sim-time units): observations older than a few ``tau`` stop mattering, so
the value tracks the current regime instead of the whole history.  Both
are O(1) memory, draw no random numbers, and pickle bit-identically
inside checkpoints.
"""

from __future__ import annotations

import math
from typing import List, Optional


class MeanTally:
    """Streaming *mean-only* summary of individual observations.

    The count/mean subset of :class:`Tally`, for accumulators whose
    snapshots only ever report a mean (the per-class response/lateness/
    waiting statistics behind :class:`~repro.system.metrics.ClassStats`):
    the variance/min/max/total bookkeeping is real arithmetic on the
    per-completion hot path, and maintaining it for nobody is the most
    expensive no-op in the engine.  The mean update is Welford's, bit
    for bit the same as :class:`Tally`'s, so swapping the two never
    perturbs a pinned result.  Use :class:`Tally` anywhere a spread
    statistic might be wanted.
    """

    __slots__ = ("name", "count", "_mean")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.count = 0
        self._mean = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        count = self.count + 1
        self.count = count
        self._mean += (value - self._mean) / count

    @property
    def mean(self) -> float:
        """Sample mean (``nan`` with no observations)."""
        return self._mean if self.count else math.nan

    def reset(self) -> None:
        """Discard everything recorded so far (warm-up truncation)."""
        self.count = 0
        self._mean = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MeanTally {self.name!r} n={self.count} mean={self.mean:.6g}>"


class Tally:
    """Streaming summary of individual observations (Welford's algorithm)."""

    __slots__ = ("name", "count", "_mean", "_m2", "min", "max", "total")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.total = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Sample mean (``nan`` with no observations)."""
        return self._mean if self.count else math.nan

    @property
    def variance(self) -> float:
        """Unbiased sample variance (``nan`` with fewer than 2 observations)."""
        if self.count < 2:
            return math.nan
        return self._m2 / (self.count - 1)

    @property
    def stdev(self) -> float:
        """Sample standard deviation."""
        var = self.variance
        return math.sqrt(var) if not math.isnan(var) else math.nan

    def reset(self) -> None:
        """Discard everything recorded so far (warm-up truncation)."""
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.total = 0.0

    def merge(self, other: "Tally") -> None:
        """Fold another tally into this one (parallel-batch combination)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            self.total = other.total
            return
        n1, n2 = self.count, other.count
        delta = other._mean - self._mean
        total_n = n1 + n2
        self._mean += delta * n2 / total_n
        self._m2 += other._m2 + delta * delta * n1 * n2 / total_n
        self.count = total_n
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def __repr__(self) -> str:
        return (
            f"Tally({self.name!r}, n={self.count}, mean={self.mean:.4g}, "
            f"sd={self.stdev:.4g})"
        )


class TimeWeighted:
    """Time-weighted statistics of a piecewise-constant signal.

    Call :meth:`update` whenever the signal changes.  The mean is weighted
    by how long each value was held::

        util = TimeWeighted(env_now=0.0)
        util.update(1.0, now=2.0)   # signal was 0 during [0, 2)
        util.update(0.0, now=5.0)   # signal was 1 during [2, 5)
        util.mean_at(10.0)          # -> 3/10
    """

    __slots__ = ("name", "_value", "_last_time", "_area", "_start_time", "min", "max")

    def __init__(self, name: str = "", initial: float = 0.0, start_time: float = 0.0) -> None:
        self.name = name
        self._value = initial
        self._last_time = start_time
        self._start_time = start_time
        self._area = 0.0
        self.min = initial
        self.max = initial

    @property
    def value(self) -> float:
        """Current value of the signal."""
        return self._value

    def update(self, value: float, now: float) -> None:
        """Change the signal to ``value`` at time ``now``."""
        if now < self._last_time:
            raise ValueError(
                f"time went backwards: {now} < {self._last_time} in {self.name!r}"
            )
        self._area += self._value * (now - self._last_time)
        self._last_time = now
        self._value = value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def increment(self, delta: float, now: float) -> None:
        """Shift the signal by ``delta`` (e.g., queue length +1/-1).

        Inlined copy of :meth:`update` -- this runs twice per work unit
        (enqueue/dequeue), and the extra call frame is measurable there.
        """
        last = self._last_time
        if now < last:
            raise ValueError(
                f"time went backwards: {now} < {last} in {self.name!r}"
            )
        old = self._value
        value = old + delta
        self._area += old * (now - last)
        self._last_time = now
        self._value = value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def mean_at(self, now: float) -> float:
        """Time-weighted mean over ``[start_time, now]``."""
        elapsed = now - self._start_time
        if elapsed <= 0:
            return math.nan
        area = self._area + self._value * (now - self._last_time)
        return area / elapsed

    def reset(self, now: float) -> None:
        """Restart accumulation at time ``now``, keeping the current value."""
        self._area = 0.0
        self._last_time = now
        self._start_time = now
        self.min = self._value
        self.max = self._value

    def __repr__(self) -> str:
        return f"TimeWeighted({self.name!r}, value={self._value!r})"


class DecayedMean:
    """Exponentially time-decayed weighted mean of an observation stream.

    Each observation enters with weight 1; all weights decay by
    ``exp(-dt / tau)`` as sim-time advances, so the mean converges to the
    recent stream (half-life ``tau * ln 2``).  Because decay scales every
    weight equally, the *mean itself* is invariant under pure passage of
    time -- a long silence keeps the last regime's value (with shrinking
    total weight) rather than drifting toward zero.

    Used for windowed miss rates (0/1 miss indicators), current response
    times, and current queue depths (sampled at completion instants).
    """

    __slots__ = ("name", "tau", "_weight", "_mean", "_last_time")

    def __init__(self, tau: float, name: str = "", start_time: float = 0.0) -> None:
        if not tau > 0:
            raise ValueError(f"tau must be positive, got {tau}")
        self.name = name
        self.tau = tau
        self._weight = 0.0
        self._mean = 0.0
        self._last_time = start_time

    def observe(self, value: float, now: float) -> None:
        """Record one observation at sim-time ``now``."""
        dt = now - self._last_time
        if dt > 0.0:
            self._weight *= math.exp(-dt / self.tau)
            self._last_time = now
        elif dt < 0.0:
            raise ValueError(
                f"time went backwards: {now} < {self._last_time} in {self.name!r}"
            )
        weight = self._weight + 1.0
        self._weight = weight
        self._mean += (value - self._mean) / weight

    @property
    def value(self) -> float:
        """Current decayed mean (``nan`` before the first observation)."""
        return self._mean if self._weight > 0.0 else math.nan

    def weight_at(self, now: float) -> float:
        """Total decayed weight at ``now`` (an effective sample size)."""
        dt = now - self._last_time
        if dt <= 0.0:
            return self._weight
        return self._weight * math.exp(-dt / self.tau)

    def reset(self, now: float) -> None:
        """Forget everything; restart the window at sim-time ``now``."""
        self._weight = 0.0
        self._mean = 0.0
        self._last_time = now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DecayedMean({self.name!r}, tau={self.tau}, value={self.value:.6g})"


class DecayedRate:
    """Exponentially time-decayed event rate (events per unit sim-time).

    Each :meth:`tick` adds one unit of mass; mass decays by
    ``exp(-dt / tau)``.  For a Poisson stream of rate ``r`` the decayed
    mass converges to ``r * tau``, so :meth:`rate_at` (mass divided by
    ``tau``) is an unbiased estimate of the *current* event rate,
    discounting anything older than a few ``tau``.
    """

    __slots__ = ("name", "tau", "_mass", "_last_time")

    def __init__(self, tau: float, name: str = "", start_time: float = 0.0) -> None:
        if not tau > 0:
            raise ValueError(f"tau must be positive, got {tau}")
        self.name = name
        self.tau = tau
        self._mass = 0.0
        self._last_time = start_time

    def tick(self, now: float, weight: float = 1.0) -> None:
        """Record one event (of optional ``weight``) at sim-time ``now``."""
        dt = now - self._last_time
        if dt > 0.0:
            self._mass *= math.exp(-dt / self.tau)
            self._last_time = now
        elif dt < 0.0:
            raise ValueError(
                f"time went backwards: {now} < {self._last_time} in {self.name!r}"
            )
        self._mass += weight

    def rate_at(self, now: float) -> float:
        """Current decayed event rate at sim-time ``now``."""
        dt = now - self._last_time
        mass = self._mass
        if dt > 0.0:
            mass *= math.exp(-dt / self.tau)
        return mass / self.tau

    def reset(self, now: float) -> None:
        """Forget everything; restart the window at sim-time ``now``."""
        self._mass = 0.0
        self._last_time = now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DecayedRate({self.name!r}, tau={self.tau})"


class Series:
    """Optional raw-observation recorder (kept out of hot paths by default).

    Stores ``(time, value)`` pairs for post-hoc analysis or plotting.  The
    simulation façade only attaches these when tracing is requested, since
    recording every task would dominate memory for long runs.
    """

    __slots__ = ("name", "times", "values", "limit")

    def __init__(self, name: str = "", limit: Optional[int] = None) -> None:
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []
        self.limit = limit

    def record(self, time: float, value: float) -> None:
        """Append one observation, honoring the optional ``limit``."""
        if self.limit is not None and len(self.times) >= self.limit:
            return
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def __repr__(self) -> str:
        return f"Series({self.name!r}, n={len(self.times)})"
