"""Core of the discrete-event simulation kernel.

This module provides the :class:`Environment` (simulation clock plus event
list) and the :class:`Event` family.  It plays the role that the DeNet
simulation language [Livny 1990] played for the original paper: a generic
discrete-event substrate on which the task/node/scheduler model is built.

Design notes
------------

* The event list is a binary heap of ``(time, priority, sequence, event)``
  tuples.  The monotonically increasing ``sequence`` number guarantees FIFO
  order among events scheduled for the same time and priority, which makes
  simulations fully deterministic for a fixed seed.
* Processes (see :mod:`repro.sim.process`) are Python generators that yield
  events; the environment resumes them when the yielded event fires.  This
  is the same co-routine style popularized by SimPy, reimplemented here
  because no simulation package is available offline.
* Events support success *and* failure.  A failed event re-raises its
  exception inside every waiting process, which is how interrupts and task
  aborts propagate.
"""

from __future__ import annotations

import heapq
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

from .errors import EventLifecycleError, SimulationError, StopSimulation

#: Default priority for scheduled events.  Lower values fire earlier among
#: events scheduled for the same simulation time.
NORMAL = 1

#: Priority used for "urgent" bookkeeping events that must run before any
#: normal event at the same timestamp (e.g., process resumption).
URGENT = 0

Callback = Callable[["Event"], None]

#: Lazily resolved :class:`~repro.sim.process.Process` (import cycle guard).
_Process = None


class Event:
    """An occurrence that may happen at some point in simulation time.

    An event goes through up to three stages:

    1. *pending* -- created, not yet triggered;
    2. *triggered* -- given a value (or an exception) and placed on the
       event list;
    3. *processed* -- popped from the event list; its callbacks have run.

    Processes wait for events by ``yield``-ing them.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_processed", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Callbacks to invoke when the event is processed.  ``None`` once
        #: the event has been processed (guards against double-processing).
        self.callbacks: Optional[list[Callback]] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        self._processed: bool = False
        self._defused: bool = False

    # -- state inspection ------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value and is scheduled to fire."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been executed."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid only after triggering)."""
        if not self.triggered:
            raise EventLifecycleError(f"{self!r} has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception, for failed events)."""
        if self._value is _PENDING:
            raise EventLifecycleError(f"{self!r} has not been triggered yet")
        return self._value

    # -- triggering ------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``.

        Returns ``self`` for chaining (``return event.succeed(x)``).
        """
        if self._value is not _PENDING:
            raise EventLifecycleError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        env = self.env
        env._seq += 1
        heappush(env._queue, (env._now, NORMAL, env._seq, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Every process waiting on this event will have ``exception`` thrown
        into it.  If nobody is waiting and the failure is never *defused*,
        :meth:`Environment.step` re-raises it so that model bugs cannot pass
        silently.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self._value is not _PENDING:
            raise EventLifecycleError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        env = self.env
        env._seq += 1
        heappush(env._queue, (env._now, NORMAL, env._seq, self))
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled, silencing the crash-on-fail."""
        self._defused = True

    def _reset(self) -> None:
        """Return a processed event to the pristine pending state.

        Internal reuse hook: a single event object can serve many
        wait/trigger cycles (the node wakeup in
        :meth:`repro.system.node.Node._server` is the canonical user),
        avoiding one allocation per idle cycle.  Only safe once the event
        has been processed and no other party retains a reference that
        expects the old value.
        """
        self.callbacks = []
        self._value = _PENDING
        self._ok = True
        self._processed = False
        self._defused = False

    # -- composition -----------------------------------------------------

    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:
        state = (
            "processed" if self._processed
            else "triggered" if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class _PendingType:
    """Sentinel for "no value yet"; distinct from ``None`` values."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<PENDING>"


_PENDING = _PendingType()


class Timeout(Event):
    """An event that fires automatically after a fixed delay.

    Timeouts dominate event traffic (every service interval and every
    interarrival gap is one), so construction writes the slots directly and
    pushes onto the event list inline instead of chaining through
    ``Event.__init__`` + ``Environment._schedule``.
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._processed = False
        self._defused = False
        self.delay = delay
        env._seq += 1
        heappush(env._queue, (env._now + delay, NORMAL, env._seq, self))

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay!r} at {id(self):#x}>"


class _Sleep(Timeout):
    """A pooled timeout reserved for kernel-internal sleep cycles.

    Created only via :meth:`Environment._sleep`.  When the run loop
    finishes processing one of these it returns the object (and its
    callback list) to the environment's pool for the next ``_sleep`` call,
    eliminating the two allocations per service interval / interarrival
    gap that dominate event traffic.  The contract: callers must not
    retain the event after it fires -- with one exception: the owner of
    the callbacks may :meth:`cancel` the sleep while it is still pending
    (this is how preemptive servers revoke a scheduled completion).
    """

    __slots__ = ()

    def cancel(self) -> None:
        """Defuse this pending sleep: its callbacks will never run.

        Deleting from the middle of a binary heap is O(n), so the heap
        entry stays where it is; when the run loop pops it at the
        original expiry time, the silenced event carries no callbacks and
        is recycled into the pool exactly like a fired sleep.  The object
        therefore returns to service automatically -- callers just drop
        their reference after cancelling.

        Only legal while the sleep is pending: cancelling a processed
        sleep raises.  That guard is best-effort, though -- it catches a
        stale cancel only until the pool re-issues the object, after
        which a retained reference is indistinguishable from the new
        owner's (a stale cancel would silently clear the new owner's
        callbacks).  The pool contract is the real protection: drop the
        reference once the sleep has fired or been cancelled.
        """
        callbacks = self.callbacks
        if self._processed or callbacks is None:
            # callbacks is None only on the step() reference path; the
            # run loop re-attaches the (cleared) list when it pools the
            # object, so _processed is the authoritative check.
            raise EventLifecycleError(
                f"cannot cancel {self!r}: it has already been processed"
            )
        callbacks.clear()


class ConditionValue:
    """Ordered mapping of event -> value for fired condition events."""

    __slots__ = ("events",)

    def __init__(self, events: list[Event]) -> None:
        self.events = events

    def __getitem__(self, event: Event) -> Any:
        if event not in self.events:
            raise KeyError(repr(event))
        return event.value

    def __contains__(self, event: Event) -> bool:
        return event in self.events

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def todict(self) -> dict[Event, Any]:
        return {event: event.value for event in self.events}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ConditionValue {self.todict()!r}>"


class Condition(Event):
    """Waits for a boolean combination of other events.

    Subclasses define :meth:`_check` deciding when the condition holds.
    A failing constituent event fails the whole condition immediately.
    """

    __slots__ = ("_events", "_fired_count")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._fired_count = 0
        for event in self._events:
            if event.env is not env:
                raise SimulationError("cannot mix events from different environments")
        if not self._events:
            self.succeed(ConditionValue([]))
            return
        for event in self._events:
            if event.processed:
                self._on_fire(event)
            else:
                event.callbacks.append(self._on_fire)

    def _on_fire(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event.defuse()
            self.fail(event.value)
            return
        self._fired_count += 1
        if self._check():
            self.succeed(ConditionValue(
                [ev for ev in self._events if ev.triggered and ev._ok]
            ))

    def _check(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(Condition):
    """Fires when *all* constituent events have fired successfully."""

    __slots__ = ()

    def _check(self) -> bool:
        return self._fired_count == len(self._events)


class AnyOf(Condition):
    """Fires when *any* constituent event has fired successfully."""

    __slots__ = ()

    def _check(self) -> bool:
        return self._fired_count >= 1


class Environment:
    """Simulation clock, event list, and process launcher.

    Typical use::

        env = Environment()

        def worker(env):
            yield env.timeout(5)
            print("done at", env.now)

        env.process(worker(env))
        env.run(until=100)
    """

    __slots__ = ("_now", "_queue", "_seq", "_active_process", "_sleep_pool")

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process = None  # set by Process while running
        self._sleep_pool: list[_Sleep] = []

    # -- clock -----------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self):
        """The :class:`~repro.sim.process.Process` currently executing."""
        return self._active_process

    # -- event construction ----------------------------------------------

    def event(self) -> Event:
        """Create a new, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def _sleep(self, delay: float) -> Timeout:
        """Pooled :class:`Timeout` for kernel-internal hot loops.

        Same semantics as ``timeout(delay)``, but the returned event is
        recycled by the run loop once it has fired, so callers (node
        servers, workload sources) MUST NOT retain it afterwards.  Use
        :meth:`timeout` anywhere the event may outlive its firing.
        """
        pool = self._sleep_pool
        if not pool:
            return _Sleep(self, delay)
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        event = pool.pop()
        event.delay = delay
        event._processed = False
        # callbacks is already a fresh empty list, _value None, _ok True.
        self._seq += 1
        heappush(self._queue, (self._now + delay, NORMAL, self._seq, event))
        return event

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Create an event that fires once all of ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Create an event that fires once any of ``events`` has fired."""
        return AnyOf(self, events)

    def process(self, generator: Generator) -> "Process":
        """Start a new process running ``generator``."""
        global _Process
        if _Process is None:  # resolved once; avoids a per-call import
            from .process import Process as _Process
        return _Process(self, generator)

    # -- scheduling ------------------------------------------------------

    def _schedule(self, event: Event, priority: int, delay: float) -> None:
        """Place a triggered event on the event list."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))

    def _schedule_call(
        self,
        callback: Callback,
        ok: bool = True,
        value: Any = None,
        defused: bool = False,
        priority: int = URGENT,
    ) -> Event:
        """Schedule a lightweight single-callback event at the current time.

        Internal fast path for kernel bookkeeping (start-of-process kicks,
        interrupt pokes, already-fired-target resumptions, node server
        wake-ups): builds a bare :class:`Event` without running
        ``__init__``/``succeed`` and places it on the event list, by
        default with :data:`URGENT` priority so it runs before any normal
        event at the same timestamp.
        """
        event = Event.__new__(Event)
        event.env = self
        event.callbacks = [callback]
        event._value = value
        event._ok = ok
        event._processed = False
        event._defused = defused
        self._seq += 1
        heappush(self._queue, (self._now, priority, self._seq, event))
        return event

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event.

        Raises :class:`IndexError` style :class:`SimulationError` when the
        event list is empty, and re-raises the exception of any failed
        event that no process defused.
        """
        if not self._queue:
            raise SimulationError("no more events to process")
        when, _priority, _seq, event = heapq.heappop(self._queue)
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        event._processed = True
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # Nobody handled the failure: crash loudly per the Zen of Python.
            exc = event.value
            raise exc

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` -- run until the event list is exhausted;
        * a number -- run until the clock reaches that time;
        * an :class:`Event` -- run until that event is processed, returning
          its value.
        """
        if until is None:
            stop_at = float("inf")
            stop_event: Optional[Event] = None
        elif isinstance(until, Event):
            stop_at = float("inf")
            stop_event = until
            if until.callbacks is not None:
                until.callbacks.append(_stop_simulation)
            elif until.triggered:
                return until.value
        else:
            stop_at = float(until)
            if stop_at < self._now:
                raise SimulationError(
                    f"until={stop_at} lies in the past (now={self._now})"
                )
            stop_event = None

        # Inlined copy of step() -- see that method for the commented
        # reference semantics.  Dispatching an event here costs one heappop
        # plus the callback calls; the method-call version pays a peek(),
        # a step() call, and several attribute lookups per event, which at
        # millions of events per run dominates wall-clock time.
        queue = self._queue
        pop = heappop
        sleep_pool = self._sleep_pool
        try:
            while queue:
                when, _priority, _seq, event = pop(queue)
                if when > stop_at:
                    # Beyond the horizon: put it back for a later run().
                    heappush(queue, (when, _priority, _seq, event))
                    self._now = stop_at
                    break
                self._now = when
                callbacks = event.callbacks
                event.callbacks = None
                event._processed = True
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise event._value
                if type(event) is _Sleep:
                    # Recycle the pooled sleep (and its callback list) for
                    # the next Environment._sleep call.
                    callbacks.clear()
                    event.callbacks = callbacks
                    sleep_pool.append(event)
        except StopSimulation as stop:
            return stop.value
        else:
            if stop_event is not None and not stop_event.triggered:
                raise SimulationError(
                    "run(until=event) exhausted the event list before the "
                    "event was triggered"
                )
            if stop_event is None and until is not None and self._now < stop_at:
                # Queue drained before the horizon: advance the clock so
                # time-weighted statistics cover the whole requested window.
                self._now = stop_at
        return None


def _stop_simulation(event: Event) -> None:
    """Callback attached to ``run(until=event)`` targets."""
    raise StopSimulation(event.value)
