"""Core of the discrete-event simulation kernel.

This module provides the :class:`Environment` (simulation clock plus event
list) and the :class:`Event` family.  It plays the role that the DeNet
simulation language [Livny 1990] played for the original paper: a generic
discrete-event substrate on which the task/node/scheduler model is built.

Since the compile-ready split, the hot engine itself (event list, run
loop, pooled sleeps, urgent deque) lives in :mod:`repro.sim._engine` —
a self-contained, monomorphic module that can optionally be compiled
ahead of time (see ``setup.py``).  This module selects the
implementation at import time and re-exports the public API unchanged,
then layers the *user-model* machinery on top: the condition events
(:class:`AllOf`/:class:`AnyOf`) here, and the generator
:class:`~repro.sim.process.Process` (including the ``Interrupt``
compatibility API) in :mod:`repro.sim.process`.  Neither is on the
event hot path.

Kernel selection
----------------

``REPRO_KERNEL`` picks the engine implementation:

* ``auto`` (default) — the compiled extension ``repro.sim._engine_c``
  if it is importable, else the pure-Python engine;
* ``compiled`` — require the compiled extension (ImportError if it was
  never built);
* ``python`` — force the pure-Python engine even when a compiled build
  exists.

Both implementations are built from the same source and produce
bit-identical fixed-seed results (pinned by
``tests/system/test_golden_determinism.py`` on both legs).
:data:`KERNEL` records which one is active.

Design notes
------------

* The event list is a binary heap of ``(time, seq, event)`` tuples.  The
  monotonically increasing ``seq`` key guarantees FIFO order among
  events scheduled for the same time, which makes simulations fully
  deterministic for a fixed seed; urgent bookkeeping bypasses the heap
  on a FIFO deque (see the engine module docstring).
* Processes (see :mod:`repro.sim.process`) are Python generators that yield
  events; the environment resumes them when the yielded event fires.  This
  is the same co-routine style popularized by SimPy, reimplemented here
  because no simulation package is available offline.
* Events support success *and* failure.  A failed event re-raises its
  exception inside every waiting process, which is how task aborts
  propagate.
"""

from __future__ import annotations

import os
from typing import Any, Iterable

from .errors import SimulationError

_KERNEL_CHOICE = (
    os.environ.get("REPRO_KERNEL", "auto").strip().lower() or "auto"
)


def _is_compiled_module(module: object) -> bool:
    """True when ``module`` is an actual extension, not a stray ``.py``
    shadow copy left behind by an aborted build."""
    filename = getattr(module, "__file__", None) or ""
    return not filename.endswith((".py", ".pyc"))


def _compiled_module_is_stale(module: object) -> bool:
    """True when the extension was built from a different ``_engine.py``.

    ``setup.py`` fingerprints the engine source into the build
    (``ENGINE_SOURCE_HASH``); if the source has been edited since, the
    extension silently shadows those edits, so ``auto`` must fall back
    and ``compiled`` must refuse.  Unverifiable (no source on disk, or
    a pre-fingerprint build) counts as stale.
    """
    recorded = getattr(module, "ENGINE_SOURCE_HASH", None)
    if not recorded:
        return True
    try:
        import hashlib
        from pathlib import Path

        source = Path(__file__).with_name("_engine.py").read_bytes()
    except OSError:
        return True
    return hashlib.sha256(source).hexdigest() != recorded


if _KERNEL_CHOICE == "python":
    from . import _engine as _impl
elif _KERNEL_CHOICE == "compiled":
    try:
        from . import _engine_c as _impl  # type: ignore[no-redef]
    except ImportError as _exc:
        raise ImportError(
            "REPRO_KERNEL=compiled, but the compiled kernel extension "
            "repro.sim._engine_c is not built; build it with "
            "REPRO_BUILD_KERNEL=auto python setup.py build_ext --inplace "
            "(or use REPRO_KERNEL=python|auto for the pure-Python engine)"
        ) from _exc

    if not _is_compiled_module(_impl):
        raise ImportError(
            "REPRO_KERNEL=compiled, but repro.sim._engine_c resolves to a "
            f"source file ({_impl.__file__}); rebuild with "
            "REPRO_BUILD_KERNEL=auto python setup.py build_ext --inplace"
        )
    if _compiled_module_is_stale(_impl):
        raise ImportError(
            "REPRO_KERNEL=compiled, but repro.sim._engine_c was built from "
            "a different _engine.py than the one installed; rebuild with "
            "REPRO_BUILD_KERNEL=auto python setup.py build_ext --inplace"
        )
elif _KERNEL_CHOICE == "auto":
    try:
        from . import _engine_c as _impl  # type: ignore[no-redef]

        if not _is_compiled_module(_impl):
            raise ImportError("stray _engine_c source shadow")
        if _compiled_module_is_stale(_impl):
            import warnings

            warnings.warn(
                "repro.sim._engine_c is stale (built from a different "
                "_engine.py); falling back to the pure-Python kernel -- "
                "rebuild with REPRO_BUILD_KERNEL=auto python setup.py "
                "build_ext --inplace",
                RuntimeWarning,
                stacklevel=2,
            )
            raise ImportError("stale _engine_c build")
    except ImportError:
        from . import _engine as _impl  # type: ignore[no-redef]
else:
    raise SimulationError(
        f"REPRO_KERNEL={_KERNEL_CHOICE!r} is not a kernel; "
        "use 'python', 'compiled', or 'auto'"
    )

#: Which engine implementation is active: ``"python"`` or ``"compiled"``.
KERNEL: str = (
    "compiled" if _impl.__name__.endswith("_engine_c") else "python"
)

# Re-exported engine API (unchanged public surface).
NORMAL = _impl.NORMAL
URGENT = _impl.URGENT
Callback = _impl.Callback
Environment = _impl.Environment
Event = _impl.Event
Timeout = _impl.Timeout
_PENDING = _impl._PENDING
_Call = _impl._Call
_Sleep = _impl._Sleep
_stop_simulation = _impl._stop_simulation


class ConditionValue:
    """Ordered mapping of event -> value for fired condition events."""

    __slots__ = ("events",)

    def __init__(self, events: list[Event]) -> None:
        self.events = events

    def __getitem__(self, event: Event) -> Any:
        if event not in self.events:
            raise KeyError(repr(event))
        return event.value

    def __contains__(self, event: Event) -> bool:
        return event in self.events

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def todict(self) -> dict[Event, Any]:
        return {event: event.value for event in self.events}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ConditionValue {self.todict()!r}>"


class Condition(Event):
    """Waits for a boolean combination of other events.

    Subclasses define :meth:`_check` deciding when the condition holds.
    A failing constituent event fails the whole condition immediately.

    Conditions are user-model machinery (fork/join composition), not
    kernel machinery: they live above the engine module and are never on
    the per-event hot path.
    """

    __slots__ = ("_events", "_fired_count")

    def __init__(self, env: Environment, events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._fired_count = 0
        for event in self._events:
            if event.env is not env:
                raise SimulationError("cannot mix events from different environments")
        if not self._events:
            self.succeed(ConditionValue([]))
            return
        for event in self._events:
            if event.processed:
                self._on_fire(event)
            else:
                callbacks = event.callbacks
                if callbacks is None:
                    # Pending with no callback list: a pooled kernel
                    # sleep, which is recycled at expiry and must never
                    # be composed into a condition.
                    raise SimulationError(
                        f"cannot wait on a pooled kernel sleep ({event!r});"
                        " use env.timeout(delay) instead"
                    )
                callbacks.append(self._on_fire)

    def _on_fire(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event.defuse()
            self.fail(event.value)
            return
        self._fired_count += 1
        if self._check():
            self.succeed(ConditionValue(
                [ev for ev in self._events if ev.triggered and ev._ok]
            ))

    def _check(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(Condition):
    """Fires when *all* constituent events have fired successfully."""

    __slots__ = ()

    def _check(self) -> bool:
        return self._fired_count == len(self._events)


class AnyOf(Condition):
    """Fires when *any* constituent event has fired successfully."""

    __slots__ = ()

    def _check(self) -> bool:
        return self._fired_count >= 1
