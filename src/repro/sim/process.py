"""Generator-based simulation processes (user-model layer).

A *process* wraps a Python generator.  The generator models an active
entity (a task source in a hand-written model, a driver in a test, an
example script's workflow).  Each time the generator ``yield``s an
:class:`Event`, the process suspends until the event fires, then resumes
with the event's value (or with the event's exception thrown into it).

A :class:`Process` is itself an event: it fires when its generator ends,
carrying the generator's return value.  That makes "fork/join" trivial::

    children = [env.process(run_subtask(env, t)) for t in subtasks]
    yield env.all_of(children)      # parallel join

Processes are **not** engine machinery.  Since the callback rewrites of
the node servers, the coordinator, and the workload sources, nothing on
the simulator's hot path runs a generator; the engine module
(:mod:`repro.sim._engine`) knows nothing about processes beyond the
generic ``_schedule_call`` primitive this class is built on.  Processes
remain fully supported as the convenient way to write *user models*
(examples, tests, ad-hoc drivers).

Interrupt compatibility layer
-----------------------------

:meth:`Process.interrupt` and the :class:`~repro.sim.errors.Interrupt`
exception are likewise pure user-model API.  The engine itself never
interrupts anything — preemptive servers revoke service with
cancellable kernel timers (:meth:`repro.sim._engine._Sleep.cancel`),
and no exception-driven control flow exists anywhere on the event
path.  The machinery is kept (and tested) so that hand-written models
can interrupt their own processes; it is implemented entirely here, as
a thin layer over ``_schedule_call``.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from .core import Environment, Event
from .errors import Interrupt, ProcessError


class Process(Event):
    """A running simulation process (and the event of its termination)."""

    __slots__ = ("_generator", "_target", "name", "_send", "_throw")

    def __init__(
        self,
        env: Environment,
        generator: Generator,
        name: Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise ProcessError(
                f"process body must be a generator, got {generator!r}"
            )
        super().__init__(env)
        self._generator = generator
        # Bound once: _resume runs once per context switch, and attribute
        # dispatch on the generator is measurable at that rate.
        self._send = generator.send
        self._throw = generator.throw
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting on (``None`` when the
        #: process is active or finished).
        self._target: Optional[Event] = None
        # Kick the process off at the current time, ahead of normal events.
        env._schedule_call(self._resume)

    # -- inspection --------------------------------------------------------

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not exited."""
        return not self.triggered

    @property
    def target(self) -> Optional[Event]:
        """The event the process is currently waiting for."""
        return self._target

    # -- interruption (user-model compatibility layer) ---------------------

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Compatibility API for user models (see the module docstring: the
        engine never interrupts anything).  Interrupting a dead process
        is an error; interrupting a process twice before it resumes
        queues both interrupts in order.
        """
        if not self.is_alive:
            raise ProcessError(f"cannot interrupt dead process {self.name!r}")
        if self.env.active_process is self:
            raise ProcessError("a process cannot interrupt itself")
        self.env._schedule_call(
            self._resume, ok=False, value=Interrupt(cause), defused=True
        )

    # -- engine --------------------------------------------------------------

    def _resume(self, trigger: Event) -> None:
        """Advance the generator with the value/exception of ``trigger``."""
        env = self.env
        env._active_process = self
        target = self._target
        if target is not None:
            self._target = None
            # Detach from the event we were waiting on (relevant for
            # interrupts: the original target may fire later and must not
            # resume us again).  When the trigger *is* the target -- the
            # overwhelmingly common case -- the kernel already cleared its
            # callback list, so nothing needs removing.
            if target is not trigger and target.callbacks is not None:
                try:
                    target.callbacks.remove(self._resume)
                except ValueError:
                    pass

        try:
            if trigger._ok:
                target = self._send(trigger._value)
            else:
                # The exception was "handed over" to this process.
                trigger._defused = True
                target = self._throw(trigger._value)
        except StopIteration as stop:
            env._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            # An unhandled interrupt terminates the process abnormally but
            # is not a model bug: either way the process event fails with
            # the exception, and waiting processes see it.
            env._active_process = None
            self.fail(exc)
            return
        env._active_process = None

        if isinstance(target, Event):
            callbacks = target.callbacks
            if callbacks is not None:
                callbacks.append(self._resume)
                self._target = target
                return
            if target._processed:
                # Already processed: resume immediately at the current time.
                ok = target._ok
                if not ok:
                    target._defused = True
                env._schedule_call(
                    self._resume, ok=ok, value=target._value, defused=not ok
                )
                return
            # Pending but no callback list: a pooled kernel sleep.  Those
            # carry a single engine-internal callback slot and are
            # recycled at expiry, so a process must never wait on one --
            # fail loudly instead of resuming at the wrong time.
            error: ProcessError = ProcessError(
                f"process {self.name!r} yielded a pooled kernel sleep "
                f"({target!r}); these are engine-internal -- yield "
                "env.timeout(delay) instead"
            )
        else:
            error = ProcessError(
                f"process {self.name!r} yielded {target!r}; processes may "
                "only yield Event instances"
            )
        try:
            self._generator.throw(error)
        except StopIteration:
            self.succeed(None)
        except BaseException as exc:
            self.fail(exc)

    def __repr__(self) -> str:
        state = "alive" if self.is_alive else "dead"
        return f"<Process {self.name!r} {state} at {id(self):#x}>"
