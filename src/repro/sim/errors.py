"""Exception types for the discrete-event simulation kernel.

The kernel deliberately uses a small, explicit exception hierarchy so that
model code can distinguish programming errors (:class:`SimulationError`)
from control-flow signals (:class:`Interrupt`, :class:`StopSimulation`).
"""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all errors raised by the simulation kernel."""


class EventLifecycleError(SimulationError):
    """An event was used in a way that violates its lifecycle.

    Examples: triggering an already-triggered event, or scheduling an event
    that is already on the event list.
    """


class ProcessError(SimulationError):
    """A simulation process misbehaved.

    Raised, for instance, when a process generator yields an object that is
    not an :class:`~repro.sim.core.Event`.
    """


class StopSimulation(Exception):
    """Signal that stops :meth:`~repro.sim.core.Environment.run`.

    Carries the value passed to :meth:`Environment.exit` (if any) so that
    ``run()`` can return it.  This intentionally subclasses ``Exception``
    (not :class:`SimulationError`): it is control flow, not a failure.
    """

    def __init__(self, value: object = None) -> None:
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Thrown into a process that is interrupted by another process.

    The ``cause`` attribute carries an arbitrary object explaining why the
    interrupt happened (e.g., an abort decision by an overload policy).
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Interrupt(cause={self.cause!r})"
