"""Reproducible named random streams.

A simulation experiment must be reproducible (same seed, same trajectory)
and its variance-reduction story depends on *stream separation*: the local
task arrival process at node 3 should consume random numbers independently
of the global-task execution-time draws, so that changing one part of the
model does not perturb another part's random sequence.

:class:`StreamFactory` hands out independent :class:`random.Random`
instances keyed by a string name.  Streams are derived deterministically
from ``(master_seed, name)`` so the same name always yields the same
sequence for a given master seed.
"""

from __future__ import annotations

import hashlib
import random
from typing import Any, Dict, Iterator


class StreamFactory:
    """Factory of independent, reproducible random streams.

    Example::

        streams = StreamFactory(seed=42)
        arrivals = streams.get("local-arrivals/node-0")
        services = streams.get("local-service/node-0")

    Each stream is a plain :class:`random.Random` (Mersenne Twister).  Two
    factories with the same seed produce identical streams; streams with
    different names are statistically independent for practical purposes
    because each is seeded from a SHA-256 digest of ``(seed, name)``.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}
        self._children: Dict[str, "StreamFactory"] = {}

    def get(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(self._derive_seed(name))
            self._streams[name] = stream
        return stream

    def spawn(self, name: str) -> "StreamFactory":
        """Return the sub-factory namespaced under ``name``.

        Useful for replications: ``factory.spawn(f"rep-{i}")`` gives each
        replication its own independent universe of named streams.  The
        sub-factory is cached, so repeated spawns of the same name return
        the same object -- which lets :meth:`getstate` cover the whole
        factory tree.
        """
        child = self._children.get(name)
        if child is None:
            child = StreamFactory(self._derive_seed(name))
            self._children[name] = child
        return child

    def _derive_seed(self, name: str) -> int:
        digest = hashlib.sha256(f"{self.seed}\x1f{name}".encode()).digest()
        return int.from_bytes(digest[:8], "big")

    def names(self) -> Iterator[str]:
        """Names of all streams created so far (for diagnostics)."""
        return iter(self._streams)

    # -- state snapshot (checkpoint/resume) ------------------------------

    def getstate(self) -> Dict[str, Any]:
        """Snapshot every stream's generator state, in creation order.

        Covers all streams created so far plus every :meth:`spawn`'d
        sub-factory (recursively).  The result round-trips through
        :meth:`setstate` and is picklable.
        """
        return {
            "seed": self.seed,
            "streams": [
                (name, stream.getstate())
                for name, stream in self._streams.items()
            ],
            "children": [
                (name, child.getstate())
                for name, child in self._children.items()
            ],
        }

    def setstate(self, state: Dict[str, Any]) -> None:
        """Restore a :meth:`getstate` snapshot.

        Streams are matched by name (missing ones are created), so the
        restore does not depend on this factory having created its
        streams in the same order as the snapshotted one.
        """
        if state["seed"] != self.seed:
            raise ValueError(
                f"stream state was captured under seed {state['seed']}, "
                f"cannot restore into a factory seeded {self.seed}"
            )
        for name, stream_state in state["streams"]:
            self.get(name).setstate(stream_state)
        for name, child_state in state["children"]:
            self.spawn(name).setstate(child_state)

    def __repr__(self) -> str:
        return f"StreamFactory(seed={self.seed}, streams={len(self._streams)})"
