"""Bounded-memory streaming quantile sketches (chunked P² markers).

Long runs (ROADMAP item 5: billion-event horizons) cannot afford to keep
every observation, and a mean-only view (:class:`~repro.sim.monitor.MeanTally`)
hides exactly the tail behavior deadline scheduling is about: a strategy
with a fine mean lateness and a catastrophic p99 looks healthy.  This
module keeps the five-marker quantile state of the P² ("P-square")
estimator of Jain & Chlamtac (CACM 1985) -- per tracked quantile, five
marker heights whose positions are nudged toward their ideal ranks with
a piecewise-parabolic interpolation -- but commits observations in
*chunks* rather than one at a time.

Why chunked: the textbook per-observation update costs a few
microseconds of pure-Python arithmetic per value, which is the same
order as the simulator's entire per-completion cost -- unacceptable on
the metrics hot path.  Here ``observe`` is a plain ``list.append``; every
:data:`CHUNK` observations the block is sorted (C speed), the marker
positions advance by *exact* per-cell counts (``bisect``), and the
classic P² height adjustment runs to convergence.  The amortized cost is
tens of nanoseconds per observation, memory stays O(CHUNK), and the
marker accuracy matches the sequential algorithm (exact counts can only
help -- see ``tests/sim/test_sketch.py`` for the pinned tolerances).
Streams no longer than one chunk are answered exactly (nearest rank).

Determinism: the sketch is pure float arithmetic on the observed values
-- it draws no random numbers and consumes no event sequence numbers, so
attaching sketches to the metrics path is invisible to the golden
determinism gate.  Chunk boundaries are observation *counts*, never
wall-clock, and queries fold the pending block into a throwaway copy, so
the committed state is a pure function of the observation sequence no
matter when anything asks for an estimate.  State is plain slots (lists
of floats/ints), so pickling a sketch inside a checkpoint restores it
bit-identically.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import List, Optional, Sequence, Tuple

#: The percentile trio reported by :class:`~repro.system.metrics.ClassStats`.
DEFAULT_QUANTILES: Tuple[float, ...] = (0.5, 0.95, 0.99)

#: Observations buffered between marker commits.  Streams up to this
#: length are answered exactly; the commit cost (one sort + a handful of
#: marker nudges) amortizes to well under 0.1 us per observation.
CHUNK = 512


class QuantileSketch:
    """Streaming estimates of several quantiles of one observation stream.

    One P² marker set (5 heights, 5 positions, 5 desired positions) per
    tracked probability, advanced a :data:`CHUNK`-sized block at a time.
    ``observe`` is an append plus an occasional amortized commit.

    >>> sketch = QuantileSketch()          # p50 / p95 / p99
    >>> for value in data: sketch.observe(value)
    >>> sketch.quantile(0.99)
    """

    __slots__ = ("name", "probs", "_committed", "_buffer", "_q", "_n", "_np", "_dn")

    def __init__(
        self,
        probs: Sequence[float] = DEFAULT_QUANTILES,
        name: str = "",
    ) -> None:
        if not probs:
            raise ValueError("need at least one quantile probability")
        for p in probs:
            if not 0.0 < p < 1.0:
                raise ValueError(f"quantile probability must be in (0, 1), got {p}")
        self.name = name
        self.probs: Tuple[float, ...] = tuple(probs)
        #: Observations already folded into the markers (count excludes
        #: the pending buffer; see :attr:`count`).
        self._committed = 0
        #: Observations awaiting the next marker commit (exact until then).
        self._buffer: List[float] = []
        #: Per-quantile marker state, ``None`` until the first commit.
        self._q: Optional[List[List[float]]] = None  # marker heights
        self._n: Optional[List[List[int]]] = None    # marker positions
        self._np: Optional[List[List[float]]] = None  # desired positions
        self._dn: List[Tuple[float, ...]] = [
            (0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0) for p in self.probs
        ]

    # -- recording -----------------------------------------------------------

    @property
    def count(self) -> int:
        """Observations recorded so far (committed plus pending)."""
        return self._committed + len(self._buffer)

    def observe(self, value: float) -> None:
        """Record one observation (hot path: an append, amortized commit)."""
        buffer = self._buffer
        buffer.append(value)
        if len(buffer) >= CHUNK:
            self._commit(buffer)
            self._buffer = []
            self._committed += CHUNK

    def _commit(self, block: List[float]) -> None:
        """Fold one full block into the marker state (sorts ``block``)."""
        block.sort()
        if self._q is None:
            self._init_markers(block)
            return
        for j in range(len(self.probs)):
            self._fold(block, self._q[j], self._n[j], self._np[j], self._dn[j])

    def _init_markers(self, block: List[float]) -> None:
        """First commit: place every marker at its exact rank in ``block``.

        Strictly better than the textbook first-five-values start -- the
        markers begin *on* the empirical quantiles of a full chunk.
        """
        size = len(block)
        self._q, self._n, self._np = [], [], []
        for j, p in enumerate(self.probs):
            dn = self._dn[j]
            desired = [1.0 + (size - 1) * d for d in dn]
            ranks = [int(round(want)) for want in desired]
            # Keep positions strictly increasing (tiny probabilities or
            # tiny chunks could collapse neighboring ranks).
            for i in range(1, 5):
                if ranks[i] <= ranks[i - 1]:
                    ranks[i] = ranks[i - 1] + 1
            for i in range(3, -1, -1):
                if ranks[i] >= ranks[i + 1]:
                    ranks[i] = ranks[i + 1] - 1
            self._q.append([block[rank - 1] for rank in ranks])
            self._n.append(ranks)
            self._np.append(desired)

    @staticmethod
    def _fold(
        block: List[float],
        q: List[float],
        n: List[int],
        np_: List[float],
        dn: Tuple[float, ...],
    ) -> None:
        """Advance one marker set by a sorted block of observations.

        Positions grow by the *exact* number of block values below each
        marker height (the batched equivalent of the sequential cell
        find), then the classic P² parabolic adjustment runs until every
        marker is within one position of its desired rank.
        """
        size = len(block)
        if block[0] < q[0]:
            q[0] = block[0]
        if block[-1] > q[4]:
            q[4] = block[-1]
        n[1] += bisect_left(block, q[1])
        n[2] += bisect_left(block, q[2])
        n[3] += bisect_left(block, q[3])
        n[4] += size
        np_[1] += size * dn[1]
        np_[2] += size * dn[2]
        np_[3] += size * dn[3]
        np_[4] += size
        # Nudge interior markers toward their desired positions, one
        # position per step: parabolic (P^2) when the new height stays
        # between the neighbors, linear otherwise.  Each step moves a
        # marker monotonically toward its target, so this terminates.
        while True:
            moved = False
            for i in (1, 2, 3):
                ni = n[i]
                d = np_[i] - ni
                if d >= 1.0:
                    if n[i + 1] - ni <= 1:
                        continue
                    d = 1
                elif d <= -1.0:
                    if n[i - 1] - ni >= -1:
                        continue
                    d = -1
                else:
                    continue
                qi = q[i]
                nl = n[i - 1]
                nr = n[i + 1]
                candidate = qi + d / (nr - nl) * (
                    (ni - nl + d) * (q[i + 1] - qi) / (nr - ni)
                    + (nr - ni - d) * (qi - q[i - 1]) / (ni - nl)
                )
                if q[i - 1] < candidate < q[i + 1]:
                    q[i] = candidate
                else:  # parabolic left the bracket: fall back to linear
                    q[i] = qi + d * (q[i + d] - qi) / (n[i + d] - ni)
                n[i] = ni + d
                moved = True
            if not moved:
                return

    # -- queries -------------------------------------------------------------

    def quantile(self, p: float) -> float:
        """Current estimate of the ``p`` quantile (``nan`` when empty).

        ``p`` must be one of the tracked probabilities; exact (nearest
        rank) while the stream fits in one chunk, the P² middle-marker
        height afterwards.  Queries never mutate committed state: a
        pending partial block is folded into a throwaway copy.
        """
        try:
            j = self.probs.index(p)
        except ValueError:
            raise KeyError(
                f"quantile {p} is not tracked (tracked: {self.probs})"
            ) from None
        if self.count == 0:
            return math.nan
        if self._q is None:  # still inside the first chunk: exact
            ordered = sorted(self._buffer)
            rank = math.ceil(p * len(ordered)) - 1
            return ordered[max(0, min(len(ordered) - 1, rank))]
        if not self._buffer:
            return self._q[j][2]
        block = sorted(self._buffer)
        q = list(self._q[j])
        self._fold(block, q, list(self._n[j]), list(self._np[j]), self._dn[j])
        return q[2]

    def estimates(self) -> Tuple[float, ...]:
        """All tracked quantile estimates, in ``probs`` order."""
        return tuple(self.quantile(p) for p in self.probs)

    # -- lifecycle -----------------------------------------------------------

    def reset(self) -> None:
        """Discard everything recorded so far (warm-up truncation)."""
        self._committed = 0
        self._buffer = []
        self._q = None
        self._n = None
        self._np = None

    def state(self) -> tuple:
        """The complete internal state, for equality checks and tests."""
        return (
            self.probs, self.count, list(self._buffer),
            self._q, self._n, self._np,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantileSketch):
            return NotImplemented
        return self.state() == other.state()

    def __repr__(self) -> str:
        if self.count == 0:
            return f"QuantileSketch({self.name!r}, empty)"
        pairs = ", ".join(
            f"p{int(p * 100)}={self.quantile(p):.6g}" for p in self.probs
        )
        return f"QuantileSketch({self.name!r}, n={self.count}, {pairs})"
