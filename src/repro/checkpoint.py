"""Checkpoint/resume for live simulations, and crash-safe file writes.

Long-horizon runs (ROADMAP items 2, 4, 5) need restart safety: a
FULL-scale run that dies at 95% must not lose everything.  This module
snapshots a live :class:`~repro.system.simulation.Simulation` -- engine
event heap + urgent deque + sleep pool + clock/seq, every RNG stream's
Mersenne state, metrics tallies, node/fault/process-manager continuation
state -- and restores it such that *resume == straight-through, bit for
bit* (pinned by ``tests/system/test_golden_determinism.py``).

File format
-----------

A checkpoint file is two consecutive pickle frames written atomically:

1. a small **header** dict (``magic``, ``version``, ``kernel``, ``seed``,
   ``config``, ``now``) that is read and validated *before* the payload
   is touched, so a mismatched file fails with a clear error instead of
   an obscure unpickling one;
2. the **payload**: the simulation object graph plus the positions of
   the module-level id counters (work-unit ids, global-task ids), which
   trace labels derive from.

Checkpoints are specific to the kernel leg that wrote them: the pickle
stores engine class paths (``repro.sim._engine`` vs ``_engine_c``), and
the two legs' objects are not interchangeable.  The header records the
leg and :func:`load_checkpoint` refuses a mismatch.

Not captured: generator processes (:class:`repro.sim.process.Process`)
and conditions -- the system model is a pure callback machine and never
uses them, so this only matters for hand-built models, which fail with
a clear ``TypeError`` at save time.
"""

from __future__ import annotations

import io
import itertools
import json
import os
import pickle
import tempfile
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from .sim.core import KERNEL

#: First bytes of every checkpoint file (as a pickled header field).
CHECKPOINT_MAGIC = "repro-checkpoint"
CHECKPOINT_VERSION = 1

#: Protocol 4 is supported by every Python this package runs on and is
#: stable across minor versions, unlike HIGHEST_PROTOCOL.
_PROTOCOL = 4


class CheckpointError(RuntimeError):
    """A checkpoint file is missing, corrupt, or incompatible."""


def atomic_write(path: Any, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (temp + fsync + rename).

    The bytes land in a temporary file in the same directory, are
    fsync'd, and replace ``path`` in one :func:`os.replace` -- so a
    reader never observes a torn write: either the old file or the new
    one, never a prefix.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class JsonlAppender:
    """Crash-tolerant grow-only JSONL channel (one flushed line per record).

    The sibling of :func:`atomic_write` for files that *grow*: a metric
    time series or a streaming trace cannot be rewritten whole on every
    record.  Instead each record is one ``json.dumps`` line, written and
    flushed immediately, so a crash tears at most the trailing line --
    which :func:`read_jsonl` tolerates by stopping at the first
    unparsable tail.  Floats round-trip exactly (``repr`` doubles, and
    ``nan`` as the bare ``NaN`` literal the stdlib parser accepts).

    Picklable: only the path and mode travel; restoring reopens the file
    in append mode, so a sink buried in a checkpointed object graph
    (e.g. a :class:`~repro.system.tracing.JsonlTraceSink`) resumes
    appending where the file left off.
    """

    def __init__(self, path: Any, append: bool = False) -> None:
        self.path = os.fspath(path)
        self._handle = open(self.path, "a" if append else "w", encoding="utf-8")
        self.written = 0

    def write(self, record: Dict[str, Any]) -> None:
        """Append one record as a single flushed JSON line."""
        handle = self._handle
        if handle is None:
            raise ValueError(f"{self.path}: appender is closed")
        handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        handle.flush()
        self.written += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __getstate__(self) -> Dict[str, Any]:
        return {"path": self.path, "written": self.written}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.path = state["path"]
        self.written = state["written"]
        self._handle = open(self.path, "a", encoding="utf-8")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "closed" if self._handle is None else "open"
        return f"JsonlAppender({self.path!r}, {status}, written={self.written})"


def read_jsonl(
    path: Any, on_torn: Optional[Callable[[str], None]] = None
) -> List[Dict[str, Any]]:
    """Read a :class:`JsonlAppender` file, tolerating a torn final line.

    A process killed mid-:meth:`~JsonlAppender.write` leaves at most one
    partial trailing line; parsing stops there and everything before it
    is returned.  (An unparsable line anywhere *else* means real
    corruption and raises.)  ``on_torn`` is called with a one-line
    description when a torn tail was skipped, so callers can surface
    the data loss instead of silently absorbing it.
    """
    path = os.fspath(path)
    records: List[Dict[str, Any]] = []
    pending_error = None
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            if pending_error is not None:
                raise CheckpointError(
                    f"{path}: corrupt JSONL line before end of file "
                    f"({pending_error})"
                )
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except ValueError as exc:
                pending_error = exc  # torn tail if nothing follows
    if pending_error is not None and on_torn is not None:
        on_torn(
            f"{path}: skipped torn final record (writer crashed "
            f"mid-write: {pending_error})"
        )
    return records


@dataclass(frozen=True)
class CheckpointPolicy:
    """When and where :meth:`Simulation.run` snapshots a live run.

    At least one trigger must be set: ``every_events`` snapshots after
    that many kernel events, ``every_seconds`` after that much wall
    time.  Triggers are checked at slice boundaries of the sliced run
    loop (the run is cut into ~128 time slices per phase), so the
    granularity is bounded by the slice length, not exact.
    """

    path: str
    every_events: int = 0
    every_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.every_events < 0:
            raise ValueError(
                f"every_events must be >= 0, got {self.every_events}"
            )
        if self.every_seconds < 0:
            raise ValueError(
                f"every_seconds must be >= 0, got {self.every_seconds}"
            )
        if self.every_events == 0 and self.every_seconds == 0:
            raise ValueError(
                "checkpoint policy needs at least one trigger: set "
                "every_events and/or every_seconds"
            )


class _Trigger:
    """Slice-boundary bookkeeping for a :class:`CheckpointPolicy`."""

    def __init__(self, policy: CheckpointPolicy, env: Any) -> None:
        self.policy = policy
        self.env = env
        self._last_seq = env._seq_peek()
        self._last_wall = time.monotonic()

    def due(self) -> bool:
        policy = self.policy
        if policy.every_events > 0:
            if self.env._seq_peek() - self._last_seq >= policy.every_events:
                return True
        if policy.every_seconds > 0:
            if time.monotonic() - self._last_wall >= policy.every_seconds:
                return True
        return False

    def saved(self) -> None:
        self._last_seq = self.env._seq_peek()
        self._last_wall = time.monotonic()


def _counter_positions() -> Tuple[int, int]:
    """Snapshot the module-level id counters without perturbing them.

    ``itertools.count`` cannot be read non-destructively, so each
    counter is drawn once and replaced by a fresh counter starting at
    the drawn value.  ``workload`` imports ``_unit_counter`` by name, so
    the *same* fresh object must be rebound into both module namespaces.
    """
    from .system import process_manager, work, workload

    unit = next(work._unit_counter)
    fresh_unit = itertools.count(unit)
    work._unit_counter = fresh_unit
    workload._unit_counter = fresh_unit

    global_ = next(process_manager._global_counter)
    process_manager._global_counter = itertools.count(global_)
    return unit, global_


def _restore_counters(unit: int, global_: int) -> None:
    from .system import process_manager, work, workload

    fresh_unit = itertools.count(unit)
    work._unit_counter = fresh_unit
    workload._unit_counter = fresh_unit
    process_manager._global_counter = itertools.count(global_)


def save_checkpoint(simulation: Any, path: Any) -> None:
    """Atomically snapshot ``simulation`` (and the id counters) to ``path``."""
    header = {
        "magic": CHECKPOINT_MAGIC,
        "version": CHECKPOINT_VERSION,
        "kernel": KERNEL,
        "seed": simulation.config.seed,
        "config": simulation.config.describe(),
        "now": simulation.env.now,
    }
    unit, global_ = _counter_positions()
    payload = {
        "simulation": simulation,
        "unit_counter": unit,
        "global_counter": global_,
    }
    buffer = io.BytesIO()
    pickle.dump(header, buffer, protocol=_PROTOCOL)
    pickle.dump(payload, buffer, protocol=_PROTOCOL)
    atomic_write(path, buffer.getvalue())


def _validate_header(header: Any, path: str) -> Dict[str, Any]:
    if (
        not isinstance(header, dict)
        or header.get("magic") != CHECKPOINT_MAGIC
    ):
        raise CheckpointError(f"{path}: not a repro checkpoint file")
    version = header.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{path}: checkpoint version {version} is not supported "
            f"(this build reads version {CHECKPOINT_VERSION})"
        )
    kernel = header.get("kernel")
    if kernel != KERNEL:
        raise CheckpointError(
            f"{path}: checkpoint was written under the {kernel!r} kernel "
            f"leg but this process runs {KERNEL!r}; restore under "
            f"REPRO_KERNEL={kernel} (checkpoints are not portable across "
            "kernel legs)"
        )
    return header


def read_checkpoint_header(path: Any) -> Dict[str, Any]:
    """Read and validate a checkpoint's header frame (cheap; no payload)."""
    path = os.fspath(path)
    try:
        with open(path, "rb") as handle:
            header = pickle.load(handle)
    except FileNotFoundError:
        raise
    except Exception as exc:
        raise CheckpointError(f"{path}: not a repro checkpoint file ({exc})")
    return _validate_header(header, path)


def load_checkpoint(path: Any) -> Any:
    """Restore the simulation saved at ``path``.

    Returns the :class:`~repro.system.simulation.Simulation`, ready for
    ``run()`` (which finishes the run exactly as the uninterrupted one
    would have, bit for bit).  Also restores the module-level id
    counters, so trace labels continue the original numbering.
    """
    path = os.fspath(path)
    with open(path, "rb") as handle:
        try:
            header = pickle.load(handle)
        except Exception as exc:
            raise CheckpointError(
                f"{path}: not a repro checkpoint file ({exc})"
            )
        _validate_header(header, path)
        payload = pickle.load(handle)
    _restore_counters(payload["unit_counter"], payload["global_counter"])
    return payload["simulation"]
