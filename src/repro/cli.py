"""Command-line interface: list and run the paper's experiments.

Usage::

    repro-experiments list
    repro-experiments table1
    repro-experiments run Fig2 --scale quick
    repro-experiments run Fig2 --scale full --workers 0   # all CPU cores
    repro-experiments run Fig2 --workers 4 --batch-size 5 # 5 runs/dispatch
    repro-experiments run V6 --scale smoke
    repro-experiments simulate --strategy EQF --load 0.5 --structure serial
    repro-experiments simulate --strategy EQF --checkpoint run.ckpt
    repro-experiments simulate --resume run.ckpt
    repro-experiments simulate --metrics-out run.metrics.jsonl
    repro-experiments metrics tail run.metrics.jsonl
    repro-experiments metrics summarize run.metrics.jsonl
    repro-experiments scenarios list
    repro-experiments scenarios run bursty-mmpp --strategy EQF --seed 7
    repro-experiments scenarios run bursty-mmpp --metrics-out rep0.jsonl
    repro-experiments scenarios sweep --scale quick --workers 0
    repro-experiments scenarios sweep --scale smoke --journal sweep.json

Every experiment id in ``repro-experiments list`` maps to one table/figure
of the paper (see DESIGN.md's experiment index); ``scenarios`` drives the
declarative workload library of :mod:`repro.scenarios`.  Every result
printout echoes the resolved seed, so any printed line is reproducible
verbatim.
"""

from __future__ import annotations

import argparse
import math
import os
import sys
from typing import Optional, Sequence

from .checkpoint import CheckpointError, CheckpointPolicy, load_checkpoint
from .experiments.figures import FigureResult
from .experiments.registry import EXPERIMENTS, get_experiment
from .experiments.runner import (
    SCALES,
    JournalError,
    resolve_batch_size,
    resolve_workers,
)
from .experiments.variations import VariationResult
from .scenarios import (
    DEFAULT_STRATEGIES,
    SCENARIOS,
    get_scenario,
    run_scenario,
    run_scenario_sweep,
)
from .stats.tables import format_percent, render_table
from .system.config import (
    SystemConfig,
    baseline_config,
    verify_load_arithmetic,
)
from .system.emission import (
    EmissionPolicy,
    read_metrics_series,
    render_series_tail,
    summarize_series,
)
from .system.simulation import Simulation, simulate as run_simulation


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``repro-experiments`` console script."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    handler = {
        "list": _cmd_list,
        "table1": _cmd_table1,
        "run": _cmd_run,
        "simulate": _cmd_simulate,
        "scenarios": _cmd_scenarios,
        "metrics": _cmd_metrics,
    }[args.command]
    return handler(args)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce Kao & Garcia-Molina, 'Deadline Assignment in a "
            "Distributed Soft Real-Time System' (ICDCS 1993)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list all reproducible experiments")
    sub.add_parser("table1", help="print the Table 1 baseline settings")

    run = sub.add_parser("run", help="run one experiment by id (e.g. Fig2)")
    run.add_argument("experiment_id", help="experiment id from 'list'")
    run.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="quick",
        help="run length preset (default: quick)",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "process-pool workers for the experiment's simulation grid "
            "(default: 1 = serial, 0 = all CPU cores)"
        ),
    )
    run.add_argument(
        "--batch-size",
        type=int,
        default=0,
        help=(
            "grid runs executed back to back in one warm worker process "
            "per pool dispatch (default: 0 = auto, about four batches per "
            "worker; 1 = one run per dispatch)"
        ),
    )

    simulate = sub.add_parser(
        "simulate", help="run a single custom simulation and print miss ratios"
    )
    simulate.add_argument("--strategy", default="UD")
    simulate.add_argument("--load", type=float, default=0.5)
    simulate.add_argument("--frac-local", type=float, default=0.75)
    simulate.add_argument(
        "--structure",
        choices=("serial", "parallel", "serial-parallel"),
        default="serial",
    )
    simulate.add_argument("--scheduler", default="EDF")
    simulate.add_argument("--sim-time", type=float, default=20_000.0)
    simulate.add_argument("--warmup", type=float, default=2_000.0)
    simulate.add_argument(
        "--seed",
        type=int,
        default=1,
        help="master random seed (echoed in the output for reproducibility)",
    )
    simulate.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help=(
            "periodically snapshot the run to this file (resume with "
            "--resume; the finished result is bit-identical either way)"
        ),
    )
    simulate.add_argument(
        "--checkpoint-events",
        type=int,
        default=0,
        metavar="N",
        help="checkpoint every N simulation events (with --checkpoint)",
    )
    simulate.add_argument(
        "--checkpoint-seconds",
        type=float,
        default=0.0,
        metavar="T",
        help=(
            "checkpoint every T wall-clock seconds (with --checkpoint; "
            "default 60 when no other trigger is given)"
        ),
    )
    simulate.add_argument(
        "--resume",
        metavar="PATH",
        default=None,
        help=(
            "resume from a checkpoint file instead of starting fresh "
            "(the config flags above are ignored; the checkpoint "
            "carries its own)"
        ),
    )
    simulate.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help=(
            "emit a JSONL metric time series to this file while the run "
            "progresses (interval records plus a final record equal to "
            "the printed result; render with 'metrics tail/summarize')"
        ),
    )
    simulate.add_argument(
        "--metrics-every-events",
        type=int,
        default=0,
        metavar="N",
        help=(
            "emit an interval record every N simulation events (with "
            "--metrics-out; default 100000 when no other trigger is given)"
        ),
    )
    simulate.add_argument(
        "--metrics-every-seconds",
        type=float,
        default=0.0,
        metavar="T",
        help=(
            "emit an interval record every T wall-clock seconds (with "
            "--metrics-out)"
        ),
    )

    metrics = sub.add_parser(
        "metrics",
        help="render a JSONL metric series written by --metrics-out",
    )
    metrics_sub = metrics.add_subparsers(dest="metrics_command", required=True)
    metrics_tail = metrics_sub.add_parser(
        "tail", help="tabulate the latest interval records of a series"
    )
    metrics_tail.add_argument("path", help="series file from --metrics-out")
    metrics_tail.add_argument(
        "--last",
        type=int,
        default=10,
        metavar="N",
        help="rows to show, newest last (default: 10; 0 = all)",
    )
    metrics_summarize = metrics_sub.add_parser(
        "summarize", help="one-paragraph summary of a series"
    )
    metrics_summarize.add_argument("path", help="series file from --metrics-out")

    scenarios = sub.add_parser(
        "scenarios",
        help="declarative workload scenarios (repro.scenarios library)",
    )
    scenarios_sub = scenarios.add_subparsers(
        dest="scenarios_command", required=True
    )

    scenarios_sub.add_parser("list", help="list the scenario library")

    scenario_run = scenarios_sub.add_parser(
        "run", help="run one scenario under one strategy"
    )
    scenario_run.add_argument("scenario", help="scenario name from 'scenarios list'")
    scenario_run.add_argument("--strategy", default="UD")
    scenario_run.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help=(
            "emit the first replication's JSONL metric series to this "
            "file (replications then run serially in-process; not "
            "compatible with --journal)"
        ),
    )
    _add_grid_arguments(scenario_run)

    scenario_sweep = scenarios_sub.add_parser(
        "sweep",
        help=(
            "run scenarios x strategies through the batched pool and rank "
            "strategies per scenario"
        ),
    )
    scenario_sweep.add_argument(
        "--scenario",
        action="append",
        dest="scenario_names",
        metavar="NAME",
        help="restrict to this scenario (repeatable; default: whole library)",
    )
    scenario_sweep.add_argument(
        "--strategies",
        nargs="+",
        default=list(DEFAULT_STRATEGIES),
        help=f"strategy panel (default: {' '.join(DEFAULT_STRATEGIES)})",
    )
    _add_grid_arguments(scenario_sweep)
    return parser


def _add_grid_arguments(parser: argparse.ArgumentParser) -> None:
    """The run-control knobs shared by scenario runs and sweeps."""
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="quick",
        help="run length preset (default: quick)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=1,
        help="base random seed (echoed in the output for reproducibility)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool workers (default: 1 = serial, 0 = all CPU cores)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=0,
        help="runs per warm-worker pool dispatch (default: 0 = auto)",
    )
    parser.add_argument(
        "--journal",
        metavar="PATH",
        default=None,
        help=(
            "restart-safe journal: completed runs land in this JSON file "
            "as they finish, and a re-run with the same journal skips "
            "them and reproduces the identical report"
        ),
    )


def _cmd_list(args: argparse.Namespace) -> int:
    rows = [
        [entry.experiment_id, entry.paper_artifact, entry.description]
        for entry in EXPERIMENTS.values()
    ]
    print(render_table(["id", "paper artifact", "description"], rows))
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    config = baseline_config()
    rows = [
        ["Overload Management Policy", config.overload_policy],
        ["Local Scheduling Algorithm", config.scheduler],
        ["mu_subtask", config.mu_subtask],
        ["mu_local", config.mu_local],
        ["k (# of nodes)", config.node_count],
        ["m (# of subtasks of a global task)", config.subtask_count],
        ["load", config.load],
        ["frac_local", config.frac_local],
        ["[Smin, Smax]", str(list(config.slack_range))],
        ["rel_flex", config.rel_flex],
        ["pex(X)/ex(X)", 1.0 + config.pex_error],
        ["derived lambda_local (per node)", round(config.local_arrival_rate, 6)],
        ["derived lambda_global", round(config.global_arrival_rate, 6)],
        ["load check (recomputed)", round(verify_load_arithmetic(config), 6)],
    ]
    print(render_table(["parameter", "value"], rows, title="Table 1: baseline setting"))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    entry = get_experiment(args.experiment_id)
    scale = SCALES[args.scale]
    try:
        workers = resolve_workers(args.workers)
        # Validation only (runs/workers placeholders): reject a negative
        # --batch-size up front with the canonical error message.
        resolve_batch_size(args.batch_size, runs=1, workers=1)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"running {entry.experiment_id} ({entry.paper_artifact}) at "
          f"scale={scale.label} workers={workers} "
          f"batch-size={args.batch_size or 'auto'} ...", file=sys.stderr)
    result = entry.run(scale, workers=workers, batch_size=args.batch_size)
    if isinstance(result, FigureResult):
        print(result.render())
    elif isinstance(result, VariationResult):
        print(result.table())
    else:  # pragma: no cover - future experiment types
        print(result)
    return 0


def _checkpoint_policy(args: argparse.Namespace) -> Optional[CheckpointPolicy]:
    """Build the ``--checkpoint`` policy, defaulting to a 60 s timer."""
    if args.checkpoint is None:
        if args.checkpoint_events or args.checkpoint_seconds:
            raise ValueError(
                "--checkpoint-events/--checkpoint-seconds need --checkpoint "
                "PATH to write to"
            )
        return None
    every_events = args.checkpoint_events
    every_seconds = args.checkpoint_seconds
    if not every_events and not every_seconds:
        every_seconds = 60.0
    return CheckpointPolicy(
        path=args.checkpoint,
        every_events=every_events,
        every_seconds=every_seconds,
    )


#: Default event interval between emitted records when --metrics-out is
#: given without an explicit trigger (event-based, so the record count
#: is reproducible run to run).
_DEFAULT_METRICS_EVENTS = 100_000


def _emission_policy(args: argparse.Namespace) -> Optional[EmissionPolicy]:
    """Build the ``--metrics-out`` policy, defaulting to an event trigger."""
    if args.metrics_out is None:
        if args.metrics_every_events or args.metrics_every_seconds:
            raise ValueError(
                "--metrics-every-events/--metrics-every-seconds need "
                "--metrics-out PATH to write to"
            )
        return None
    every_events = args.metrics_every_events
    every_seconds = args.metrics_every_seconds
    if not every_events and not every_seconds:
        every_events = _DEFAULT_METRICS_EVENTS
    return EmissionPolicy(
        path=args.metrics_out,
        every_events=every_events,
        every_seconds=every_seconds,
    )


def _cmd_simulate(args: argparse.Namespace) -> int:
    try:
        policy = _checkpoint_policy(args)
        emit = _emission_policy(args)
        if args.resume is not None:
            simulation = load_checkpoint(args.resume)
            print(
                f"resumed from {args.resume} at t={simulation.env.now:g}",
                file=sys.stderr,
            )
        else:
            simulation = None
    except FileNotFoundError:
        print(
            f"error: {args.resume}: no such checkpoint file (a run "
            "shorter than its first trigger interval writes none)",
            file=sys.stderr,
        )
        return 2
    except (CheckpointError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if simulation is None:
        simulation = Simulation(SystemConfig(
            strategy=args.strategy,
            load=args.load,
            frac_local=args.frac_local,
            task_structure=args.structure,
            scheduler=args.scheduler,
            sim_time=args.sim_time,
            warmup_time=args.warmup,
            seed=args.seed,
        ))
    result = simulation.run(checkpoint=policy, emit=emit)
    config = simulation.config
    rows = [
        ["MD_local", format_percent(result.md_local)],
        ["MD_global", format_percent(result.md_global)],
        ["global p99 response", f"{result.global_.p99_response:.3f}"],
        ["global p99 lateness", f"{result.global_.p99_lateness:.3f}"],
        ["mean node utilization", f"{result.mean_utilization:.3f}"],
        ["local tasks finished", result.local.completed],
        ["global tasks finished", result.global_.completed],
    ]
    print(render_table(["metric", "value"], rows, title=config.describe()))
    print(f"resolved seed: {config.seed}")
    if emit is not None:
        print(f"metrics series: {emit.path}", file=sys.stderr)
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    def warn_torn(message: str) -> None:
        print(f"warning: {message}", file=sys.stderr)

    try:
        records = read_metrics_series(args.path, on_torn=warn_torn)
    except FileNotFoundError:
        print(f"error: {args.path}: no such metrics series", file=sys.stderr)
        return 2
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.metrics_command == "tail":
        print(render_series_tail(records, last=args.last))
    else:
        print(summarize_series(records))
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    handler = {
        "list": _cmd_scenarios_list,
        "run": _cmd_scenarios_run,
        "sweep": _cmd_scenarios_sweep,
    }[args.scenarios_command]
    return handler(args)


def _cmd_scenarios_list(args: argparse.Namespace) -> int:
    rows = [
        [spec.name, spec.describe(), spec.description]
        for spec in SCENARIOS.values()
    ]
    print(render_table(
        ["scenario", "dimensions", "description"],
        rows,
        title="Scenario library (repro.scenarios)",
    ))
    return 0


def _resolve_grid_arguments(args: argparse.Namespace):
    """Validate the shared grid knobs; returns (scale, workers) or an error
    message."""
    scale = SCALES[args.scale]
    workers = resolve_workers(args.workers)
    # Validation only (runs/workers placeholders), as in `run`.
    resolve_batch_size(args.batch_size, runs=1, workers=1)
    return scale, workers


def _validate_strategies(names) -> None:
    """Fail fast on a typoed strategy flag, before any simulation runs."""
    from .core.strategies import parse_assigner

    for name in names:
        parse_assigner(name)  # raises ValueError with the offending name


def _cmd_scenarios_run(args: argparse.Namespace) -> int:
    try:
        spec = get_scenario(args.scenario)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    try:
        scale, workers = _resolve_grid_arguments(args)
        _validate_strategies([args.strategy])
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.metrics_out is not None and args.journal is not None:
        print(
            "error: --metrics-out runs replications in-process and does "
            "not support --journal",
            file=sys.stderr,
        )
        return 2
    try:
        if args.metrics_out is not None:
            estimate = _run_scenario_with_metrics(
                spec, args.strategy, scale, args.seed, args.metrics_out
            )
        else:
            estimate = run_scenario(
                spec,
                strategy=args.strategy,
                scale=scale,
                seed=args.seed,
                workers=workers,
                batch_size=args.batch_size,
                journal=args.journal,
            )
    except JournalError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    rows = [
        ["MD_global", format_percent(estimate.md_global.mean)],
        ["MD_local", format_percent(estimate.md_local.mean)],
        ["gap (global - local)", format_percent(estimate.gap)],
        ["global p99 lateness", (
            "-" if math.isnan(estimate.p99_late)
            else f"{estimate.p99_late:.3f}"
        )],
        ["mean node utilization", f"{estimate.utilization:.3f}"],
        ["local tasks finished", estimate.local_completed],
        ["global tasks finished", estimate.global_completed],
        ["replications", scale.replications],
    ]
    print(render_table(
        ["metric", "value"],
        rows,
        title=(
            f"scenario {spec.name} strategy={args.strategy} "
            f"scale={scale.label}"
        ),
    ))
    print(f"resolved seed: {args.seed}")
    if args.metrics_out is not None:
        print(f"metrics series: {args.metrics_out}", file=sys.stderr)
        _print_resource_footprint()
    return 0


def _print_resource_footprint() -> None:
    """Footprint lines for instrumented (``--metrics-out``) runs.

    Peak RSS is the fleet-scale capacity number (can the config fit on
    this box?); the unit-pool high-water mark is the true concurrent
    work-unit population across the in-process replications -- the
    allocation load the free list absorbed.  ``ru_maxrss`` is kibibytes
    on Linux, bytes on macOS.
    """
    import resource

    from .system.work import UNIT_POOL

    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        peak //= 1024
    print(f"peak RSS: {peak / 1024:.1f} MiB", file=sys.stderr)
    print(
        f"unit pool high-water: {UNIT_POOL.high_water} units",
        file=sys.stderr,
    )


def _run_scenario_with_metrics(spec, strategy, scale, seed, metrics_out):
    """``scenarios run --metrics-out``: replications serially, rep 0 emits.

    Uses the same per-replication seeds as
    :func:`~repro.experiments.runner.replicate` (``seed * 10_000 + i``)
    and the same aggregation, so the printed estimate is identical to
    the pooled path -- only the first replication additionally writes
    its series (emission is determinism-invisible, so that run's
    result is unchanged too).
    """
    from .experiments.runner import _aggregate, _replication_configs

    config = scale.apply(spec.to_config(strategy=strategy, seed=seed))
    results = []
    for i, rep_config in enumerate(
        _replication_configs(config, scale.replications)
    ):
        emit = (
            EmissionPolicy(
                path=metrics_out, every_events=_DEFAULT_METRICS_EVENTS
            )
            if i == 0
            else None
        )
        results.append(run_simulation(rep_config, emit=emit))
    return _aggregate(config, results, level=0.95)


def _cmd_scenarios_sweep(args: argparse.Namespace) -> int:
    try:
        specs = (
            [get_scenario(name) for name in args.scenario_names]
            if args.scenario_names
            else list(SCENARIOS.values())
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    try:
        scale, workers = _resolve_grid_arguments(args)
        _validate_strategies(args.strategies)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"sweeping {len(specs)} scenario(s) x {len(args.strategies)} "
        f"strategies at scale={scale.label} workers={workers} "
        f"batch-size={args.batch_size or 'auto'} seed={args.seed} ...",
        file=sys.stderr,
    )
    journal = args.journal
    if journal is not None:
        # Echo the resolved path so operators know exactly which file a
        # re-run must point at to skip the completed cells.
        journal = os.path.abspath(journal)
        print(f"journal: {journal}", file=sys.stderr)
    try:
        result = run_scenario_sweep(
            specs,
            strategies=args.strategies,
            scale=scale,
            seed=args.seed,
            workers=workers,
            batch_size=args.batch_size,
            journal=journal,
        )
    except JournalError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if result.journal_restored:
        print(
            f"journal: restored {result.journal_restored} completed "
            "run(s); skipped re-running them",
            file=sys.stderr,
        )
    print(result.table())
    print(f"resolved seed: {args.seed}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
