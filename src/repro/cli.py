"""Command-line interface: list and run the paper's experiments.

Usage::

    repro-experiments list
    repro-experiments table1
    repro-experiments run Fig2 --scale quick
    repro-experiments run Fig2 --scale full --workers 0   # all CPU cores
    repro-experiments run Fig2 --workers 4 --batch-size 5 # 5 runs/dispatch
    repro-experiments run V6 --scale smoke
    repro-experiments simulate --strategy EQF --load 0.5 --structure serial

Every experiment id in ``repro-experiments list`` maps to one table/figure
of the paper (see DESIGN.md's experiment index).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .experiments.figures import FigureResult
from .experiments.registry import EXPERIMENTS, get_experiment
from .experiments.runner import SCALES, resolve_batch_size, resolve_workers
from .experiments.variations import VariationResult
from .stats.tables import format_percent, render_table
from .system.config import (
    SystemConfig,
    baseline_config,
    verify_load_arithmetic,
)
from .system.simulation import Simulation


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``repro-experiments`` console script."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    handler = {
        "list": _cmd_list,
        "table1": _cmd_table1,
        "run": _cmd_run,
        "simulate": _cmd_simulate,
    }[args.command]
    return handler(args)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce Kao & Garcia-Molina, 'Deadline Assignment in a "
            "Distributed Soft Real-Time System' (ICDCS 1993)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list all reproducible experiments")
    sub.add_parser("table1", help="print the Table 1 baseline settings")

    run = sub.add_parser("run", help="run one experiment by id (e.g. Fig2)")
    run.add_argument("experiment_id", help="experiment id from 'list'")
    run.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="quick",
        help="run length preset (default: quick)",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "process-pool workers for the experiment's simulation grid "
            "(default: 1 = serial, 0 = all CPU cores)"
        ),
    )
    run.add_argument(
        "--batch-size",
        type=int,
        default=0,
        help=(
            "grid runs executed back to back in one warm worker process "
            "per pool dispatch (default: 0 = auto, about four batches per "
            "worker; 1 = one run per dispatch)"
        ),
    )

    simulate = sub.add_parser(
        "simulate", help="run a single custom simulation and print miss ratios"
    )
    simulate.add_argument("--strategy", default="UD")
    simulate.add_argument("--load", type=float, default=0.5)
    simulate.add_argument("--frac-local", type=float, default=0.75)
    simulate.add_argument(
        "--structure",
        choices=("serial", "parallel", "serial-parallel"),
        default="serial",
    )
    simulate.add_argument("--scheduler", default="EDF")
    simulate.add_argument("--sim-time", type=float, default=20_000.0)
    simulate.add_argument("--warmup", type=float, default=2_000.0)
    simulate.add_argument("--seed", type=int, default=1)
    return parser


def _cmd_list(args: argparse.Namespace) -> int:
    rows = [
        [entry.experiment_id, entry.paper_artifact, entry.description]
        for entry in EXPERIMENTS.values()
    ]
    print(render_table(["id", "paper artifact", "description"], rows))
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    config = baseline_config()
    rows = [
        ["Overload Management Policy", config.overload_policy],
        ["Local Scheduling Algorithm", config.scheduler],
        ["mu_subtask", config.mu_subtask],
        ["mu_local", config.mu_local],
        ["k (# of nodes)", config.node_count],
        ["m (# of subtasks of a global task)", config.subtask_count],
        ["load", config.load],
        ["frac_local", config.frac_local],
        ["[Smin, Smax]", str(list(config.slack_range))],
        ["rel_flex", config.rel_flex],
        ["pex(X)/ex(X)", 1.0 + config.pex_error],
        ["derived lambda_local (per node)", round(config.local_arrival_rate, 6)],
        ["derived lambda_global", round(config.global_arrival_rate, 6)],
        ["load check (recomputed)", round(verify_load_arithmetic(config), 6)],
    ]
    print(render_table(["parameter", "value"], rows, title="Table 1: baseline setting"))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    entry = get_experiment(args.experiment_id)
    scale = SCALES[args.scale]
    try:
        workers = resolve_workers(args.workers)
        # Validation only (runs/workers placeholders): reject a negative
        # --batch-size up front with the canonical error message.
        resolve_batch_size(args.batch_size, runs=1, workers=1)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"running {entry.experiment_id} ({entry.paper_artifact}) at "
          f"scale={scale.label} workers={workers} "
          f"batch-size={args.batch_size or 'auto'} ...", file=sys.stderr)
    result = entry.run(scale, workers=workers, batch_size=args.batch_size)
    if isinstance(result, FigureResult):
        print(result.render())
    elif isinstance(result, VariationResult):
        print(result.table())
    else:  # pragma: no cover - future experiment types
        print(result)
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    config = SystemConfig(
        strategy=args.strategy,
        load=args.load,
        frac_local=args.frac_local,
        task_structure=args.structure,
        scheduler=args.scheduler,
        sim_time=args.sim_time,
        warmup_time=args.warmup,
        seed=args.seed,
    )
    result = Simulation(config).run()
    rows = [
        ["MD_local", format_percent(result.md_local)],
        ["MD_global", format_percent(result.md_global)],
        ["mean node utilization", f"{result.mean_utilization:.3f}"],
        ["local tasks finished", result.local.completed],
        ["global tasks finished", result.global_.completed],
    ]
    print(render_table(["metric", "value"], rows, title=config.describe()))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
