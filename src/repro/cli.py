"""Command-line interface: list and run the paper's experiments.

Usage::

    repro-experiments list
    repro-experiments table1
    repro-experiments run Fig2 --scale quick
    repro-experiments run Fig2 --scale full --workers 0   # all CPU cores
    repro-experiments run Fig2 --workers 4 --batch-size 5 # 5 runs/dispatch
    repro-experiments run V6 --scale smoke
    repro-experiments simulate --strategy EQF --load 0.5 --structure serial
    repro-experiments simulate --strategy EQF --checkpoint run.ckpt
    repro-experiments simulate --resume run.ckpt
    repro-experiments scenarios list
    repro-experiments scenarios run bursty-mmpp --strategy EQF --seed 7
    repro-experiments scenarios sweep --scale quick --workers 0
    repro-experiments scenarios sweep --scale smoke --journal sweep.json

Every experiment id in ``repro-experiments list`` maps to one table/figure
of the paper (see DESIGN.md's experiment index); ``scenarios`` drives the
declarative workload library of :mod:`repro.scenarios`.  Every result
printout echoes the resolved seed, so any printed line is reproducible
verbatim.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from .checkpoint import CheckpointError, CheckpointPolicy, load_checkpoint
from .experiments.figures import FigureResult
from .experiments.registry import EXPERIMENTS, get_experiment
from .experiments.runner import (
    SCALES,
    JournalError,
    resolve_batch_size,
    resolve_workers,
)
from .experiments.variations import VariationResult
from .scenarios import (
    DEFAULT_STRATEGIES,
    SCENARIOS,
    get_scenario,
    run_scenario,
    run_scenario_sweep,
)
from .stats.tables import format_percent, render_table
from .system.config import (
    SystemConfig,
    baseline_config,
    verify_load_arithmetic,
)
from .system.simulation import Simulation


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``repro-experiments`` console script."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    handler = {
        "list": _cmd_list,
        "table1": _cmd_table1,
        "run": _cmd_run,
        "simulate": _cmd_simulate,
        "scenarios": _cmd_scenarios,
    }[args.command]
    return handler(args)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce Kao & Garcia-Molina, 'Deadline Assignment in a "
            "Distributed Soft Real-Time System' (ICDCS 1993)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list all reproducible experiments")
    sub.add_parser("table1", help="print the Table 1 baseline settings")

    run = sub.add_parser("run", help="run one experiment by id (e.g. Fig2)")
    run.add_argument("experiment_id", help="experiment id from 'list'")
    run.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="quick",
        help="run length preset (default: quick)",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "process-pool workers for the experiment's simulation grid "
            "(default: 1 = serial, 0 = all CPU cores)"
        ),
    )
    run.add_argument(
        "--batch-size",
        type=int,
        default=0,
        help=(
            "grid runs executed back to back in one warm worker process "
            "per pool dispatch (default: 0 = auto, about four batches per "
            "worker; 1 = one run per dispatch)"
        ),
    )

    simulate = sub.add_parser(
        "simulate", help="run a single custom simulation and print miss ratios"
    )
    simulate.add_argument("--strategy", default="UD")
    simulate.add_argument("--load", type=float, default=0.5)
    simulate.add_argument("--frac-local", type=float, default=0.75)
    simulate.add_argument(
        "--structure",
        choices=("serial", "parallel", "serial-parallel"),
        default="serial",
    )
    simulate.add_argument("--scheduler", default="EDF")
    simulate.add_argument("--sim-time", type=float, default=20_000.0)
    simulate.add_argument("--warmup", type=float, default=2_000.0)
    simulate.add_argument(
        "--seed",
        type=int,
        default=1,
        help="master random seed (echoed in the output for reproducibility)",
    )
    simulate.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help=(
            "periodically snapshot the run to this file (resume with "
            "--resume; the finished result is bit-identical either way)"
        ),
    )
    simulate.add_argument(
        "--checkpoint-events",
        type=int,
        default=0,
        metavar="N",
        help="checkpoint every N simulation events (with --checkpoint)",
    )
    simulate.add_argument(
        "--checkpoint-seconds",
        type=float,
        default=0.0,
        metavar="T",
        help=(
            "checkpoint every T wall-clock seconds (with --checkpoint; "
            "default 60 when no other trigger is given)"
        ),
    )
    simulate.add_argument(
        "--resume",
        metavar="PATH",
        default=None,
        help=(
            "resume from a checkpoint file instead of starting fresh "
            "(the config flags above are ignored; the checkpoint "
            "carries its own)"
        ),
    )

    scenarios = sub.add_parser(
        "scenarios",
        help="declarative workload scenarios (repro.scenarios library)",
    )
    scenarios_sub = scenarios.add_subparsers(
        dest="scenarios_command", required=True
    )

    scenarios_sub.add_parser("list", help="list the scenario library")

    scenario_run = scenarios_sub.add_parser(
        "run", help="run one scenario under one strategy"
    )
    scenario_run.add_argument("scenario", help="scenario name from 'scenarios list'")
    scenario_run.add_argument("--strategy", default="UD")
    _add_grid_arguments(scenario_run)

    scenario_sweep = scenarios_sub.add_parser(
        "sweep",
        help=(
            "run scenarios x strategies through the batched pool and rank "
            "strategies per scenario"
        ),
    )
    scenario_sweep.add_argument(
        "--scenario",
        action="append",
        dest="scenario_names",
        metavar="NAME",
        help="restrict to this scenario (repeatable; default: whole library)",
    )
    scenario_sweep.add_argument(
        "--strategies",
        nargs="+",
        default=list(DEFAULT_STRATEGIES),
        help=f"strategy panel (default: {' '.join(DEFAULT_STRATEGIES)})",
    )
    _add_grid_arguments(scenario_sweep)
    return parser


def _add_grid_arguments(parser: argparse.ArgumentParser) -> None:
    """The run-control knobs shared by scenario runs and sweeps."""
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="quick",
        help="run length preset (default: quick)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=1,
        help="base random seed (echoed in the output for reproducibility)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool workers (default: 1 = serial, 0 = all CPU cores)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=0,
        help="runs per warm-worker pool dispatch (default: 0 = auto)",
    )
    parser.add_argument(
        "--journal",
        metavar="PATH",
        default=None,
        help=(
            "restart-safe journal: completed runs land in this JSON file "
            "as they finish, and a re-run with the same journal skips "
            "them and reproduces the identical report"
        ),
    )


def _cmd_list(args: argparse.Namespace) -> int:
    rows = [
        [entry.experiment_id, entry.paper_artifact, entry.description]
        for entry in EXPERIMENTS.values()
    ]
    print(render_table(["id", "paper artifact", "description"], rows))
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    config = baseline_config()
    rows = [
        ["Overload Management Policy", config.overload_policy],
        ["Local Scheduling Algorithm", config.scheduler],
        ["mu_subtask", config.mu_subtask],
        ["mu_local", config.mu_local],
        ["k (# of nodes)", config.node_count],
        ["m (# of subtasks of a global task)", config.subtask_count],
        ["load", config.load],
        ["frac_local", config.frac_local],
        ["[Smin, Smax]", str(list(config.slack_range))],
        ["rel_flex", config.rel_flex],
        ["pex(X)/ex(X)", 1.0 + config.pex_error],
        ["derived lambda_local (per node)", round(config.local_arrival_rate, 6)],
        ["derived lambda_global", round(config.global_arrival_rate, 6)],
        ["load check (recomputed)", round(verify_load_arithmetic(config), 6)],
    ]
    print(render_table(["parameter", "value"], rows, title="Table 1: baseline setting"))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    entry = get_experiment(args.experiment_id)
    scale = SCALES[args.scale]
    try:
        workers = resolve_workers(args.workers)
        # Validation only (runs/workers placeholders): reject a negative
        # --batch-size up front with the canonical error message.
        resolve_batch_size(args.batch_size, runs=1, workers=1)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"running {entry.experiment_id} ({entry.paper_artifact}) at "
          f"scale={scale.label} workers={workers} "
          f"batch-size={args.batch_size or 'auto'} ...", file=sys.stderr)
    result = entry.run(scale, workers=workers, batch_size=args.batch_size)
    if isinstance(result, FigureResult):
        print(result.render())
    elif isinstance(result, VariationResult):
        print(result.table())
    else:  # pragma: no cover - future experiment types
        print(result)
    return 0


def _checkpoint_policy(args: argparse.Namespace) -> Optional[CheckpointPolicy]:
    """Build the ``--checkpoint`` policy, defaulting to a 60 s timer."""
    if args.checkpoint is None:
        if args.checkpoint_events or args.checkpoint_seconds:
            raise ValueError(
                "--checkpoint-events/--checkpoint-seconds need --checkpoint "
                "PATH to write to"
            )
        return None
    every_events = args.checkpoint_events
    every_seconds = args.checkpoint_seconds
    if not every_events and not every_seconds:
        every_seconds = 60.0
    return CheckpointPolicy(
        path=args.checkpoint,
        every_events=every_events,
        every_seconds=every_seconds,
    )


def _cmd_simulate(args: argparse.Namespace) -> int:
    try:
        policy = _checkpoint_policy(args)
        if args.resume is not None:
            simulation = load_checkpoint(args.resume)
            print(
                f"resumed from {args.resume} at t={simulation.env.now:g}",
                file=sys.stderr,
            )
        else:
            simulation = None
    except FileNotFoundError:
        print(
            f"error: {args.resume}: no such checkpoint file (a run "
            "shorter than its first trigger interval writes none)",
            file=sys.stderr,
        )
        return 2
    except (CheckpointError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if simulation is None:
        simulation = Simulation(SystemConfig(
            strategy=args.strategy,
            load=args.load,
            frac_local=args.frac_local,
            task_structure=args.structure,
            scheduler=args.scheduler,
            sim_time=args.sim_time,
            warmup_time=args.warmup,
            seed=args.seed,
        ))
    result = simulation.run(checkpoint=policy)
    config = simulation.config
    rows = [
        ["MD_local", format_percent(result.md_local)],
        ["MD_global", format_percent(result.md_global)],
        ["mean node utilization", f"{result.mean_utilization:.3f}"],
        ["local tasks finished", result.local.completed],
        ["global tasks finished", result.global_.completed],
    ]
    print(render_table(["metric", "value"], rows, title=config.describe()))
    print(f"resolved seed: {config.seed}")
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    handler = {
        "list": _cmd_scenarios_list,
        "run": _cmd_scenarios_run,
        "sweep": _cmd_scenarios_sweep,
    }[args.scenarios_command]
    return handler(args)


def _cmd_scenarios_list(args: argparse.Namespace) -> int:
    rows = [
        [spec.name, spec.describe(), spec.description]
        for spec in SCENARIOS.values()
    ]
    print(render_table(
        ["scenario", "dimensions", "description"],
        rows,
        title="Scenario library (repro.scenarios)",
    ))
    return 0


def _resolve_grid_arguments(args: argparse.Namespace):
    """Validate the shared grid knobs; returns (scale, workers) or an error
    message."""
    scale = SCALES[args.scale]
    workers = resolve_workers(args.workers)
    # Validation only (runs/workers placeholders), as in `run`.
    resolve_batch_size(args.batch_size, runs=1, workers=1)
    return scale, workers


def _validate_strategies(names) -> None:
    """Fail fast on a typoed strategy flag, before any simulation runs."""
    from .core.strategies import parse_assigner

    for name in names:
        parse_assigner(name)  # raises ValueError with the offending name


def _cmd_scenarios_run(args: argparse.Namespace) -> int:
    try:
        spec = get_scenario(args.scenario)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    try:
        scale, workers = _resolve_grid_arguments(args)
        _validate_strategies([args.strategy])
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        estimate = run_scenario(
            spec,
            strategy=args.strategy,
            scale=scale,
            seed=args.seed,
            workers=workers,
            batch_size=args.batch_size,
            journal=args.journal,
        )
    except JournalError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    rows = [
        ["MD_global", format_percent(estimate.md_global.mean)],
        ["MD_local", format_percent(estimate.md_local.mean)],
        ["gap (global - local)", format_percent(estimate.gap)],
        ["mean node utilization", f"{estimate.utilization:.3f}"],
        ["local tasks finished", estimate.local_completed],
        ["global tasks finished", estimate.global_completed],
        ["replications", scale.replications],
    ]
    print(render_table(
        ["metric", "value"],
        rows,
        title=(
            f"scenario {spec.name} strategy={args.strategy} "
            f"scale={scale.label}"
        ),
    ))
    print(f"resolved seed: {args.seed}")
    return 0


def _cmd_scenarios_sweep(args: argparse.Namespace) -> int:
    try:
        specs = (
            [get_scenario(name) for name in args.scenario_names]
            if args.scenario_names
            else list(SCENARIOS.values())
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    try:
        scale, workers = _resolve_grid_arguments(args)
        _validate_strategies(args.strategies)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"sweeping {len(specs)} scenario(s) x {len(args.strategies)} "
        f"strategies at scale={scale.label} workers={workers} "
        f"batch-size={args.batch_size or 'auto'} seed={args.seed} ...",
        file=sys.stderr,
    )
    journal = args.journal
    if journal is not None:
        # Echo the resolved path so operators know exactly which file a
        # re-run must point at to skip the completed cells.
        journal = os.path.abspath(journal)
        print(f"journal: {journal}", file=sys.stderr)
    try:
        result = run_scenario_sweep(
            specs,
            strategies=args.strategies,
            scale=scale,
            seed=args.seed,
            workers=workers,
            batch_size=args.batch_size,
            journal=journal,
        )
    except JournalError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if result.journal_restored:
        print(
            f"journal: restored {result.journal_restored} completed "
            "run(s); skipped re-running them",
            file=sys.stderr,
        )
    print(result.table())
    print(f"resolved seed: {args.seed}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
